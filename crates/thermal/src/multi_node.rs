//! Extension: an N-node discretised pack thermal model.
//!
//! The paper lumps the whole pack into one battery node and one coolant
//! node ("we can simplify the heat exchange model ... without affecting
//! the concept"). This module provides the refinement the paper waves
//! at: the pack as a chain of `N` battery segments, each exchanging heat
//! with its neighbours (cell-to-cell conduction) and with the coolant
//! channel that warms as it flows past successive segments — so the last
//! segment in the flow direction runs measurably hotter, the effect that
//! determines real packs' hot-spot placement.
//!
//! The lumped [`crate::ThermalModel`] remains the model OTEM controls
//! (matching the paper); this one serves validation studies: its mean
//! temperature should track the lumped model, while its spread
//! quantifies what the lumping hides.

use crate::error::ThermalError;
use crate::model::ThermalParams;
use otem_units::{Kelvin, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// State of the discretised pack: one temperature per battery segment
/// plus the per-segment coolant channel temperatures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiNodeState {
    /// Battery segment temperatures, in flow order.
    pub segments: Vec<Kelvin>,
    /// Coolant temperature *leaving* each segment, in flow order.
    pub coolant: Vec<Kelvin>,
}

impl MultiNodeState {
    /// All nodes at one temperature.
    pub fn uniform(n: usize, temperature: Kelvin) -> Self {
        Self {
            segments: vec![temperature; n],
            coolant: vec![temperature; n],
        }
    }

    /// Mean battery segment temperature (comparable to the lumped
    /// model's battery node).
    pub fn mean(&self) -> Kelvin {
        let sum: f64 = self.segments.iter().map(|t| t.value()).sum();
        Kelvin::new(sum / self.segments.len().max(1) as f64)
    }

    /// Hottest segment.
    pub fn max(&self) -> Kelvin {
        self.segments
            .iter()
            .copied()
            .fold(Kelvin::ZERO, Kelvin::max)
    }

    /// Hot-spot spread: hottest minus coldest segment.
    pub fn spread(&self) -> Kelvin {
        let min = self
            .segments
            .iter()
            .copied()
            .fold(Kelvin::new(f64::INFINITY), Kelvin::min);
        self.max() - min
    }
}

/// The N-segment pack thermal model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiNodeModel {
    params: ThermalParams,
    segments: usize,
    /// Segment-to-segment conductance (W/K).
    conduction: f64,
}

impl MultiNodeModel {
    /// Builds an `n`-segment model that subdivides the given lumped
    /// parameters (each segment gets `1/n` of the heat capacity and of
    /// the battery↔coolant conductance; the coolant flows through the
    /// segments in series).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] for zero segments,
    /// negative conduction, or invalid lumped parameters.
    pub fn new(params: ThermalParams, n: usize, conduction: f64) -> Result<Self, ThermalError> {
        params.validate()?;
        if n == 0 {
            return Err(ThermalError::InvalidParameter {
                name: "segments",
                value: 0.0,
                constraint: ">= 1",
            });
        }
        if conduction < 0.0 || !conduction.is_finite() {
            return Err(ThermalError::InvalidParameter {
                name: "conduction",
                value: conduction,
                constraint: ">= 0 W/K and finite",
            });
        }
        Ok(Self {
            params,
            segments: n,
            conduction,
        })
    }

    /// Number of segments.
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// One forward-Euler step with `dt` subdivided for stability
    /// (per-segment lumps are small, so internal sub-stepping keeps the
    /// explicit scheme stable at the 1 s control period).
    ///
    /// `heat` is the whole pack's generation, split uniformly across
    /// segments; `inlet` is the coolant temperature entering segment 0.
    ///
    /// # Panics
    ///
    /// Panics if `state` has a different segment count than the model.
    pub fn step(
        &self,
        state: &MultiNodeState,
        heat: Watts,
        inlet: Kelvin,
        dt: Seconds,
    ) -> MultiNodeState {
        assert_eq!(
            state.segments.len(),
            self.segments,
            "state/model segment count mismatch"
        );
        let n = self.segments as f64;
        let p = &self.params;
        let cb_seg = p.battery_heat_capacity.value() / n;
        let cc_seg = p.coolant_heat_capacity.value() / n;
        let h_seg = p.battery_coolant_conductance.value() / n;
        let h_amb_seg = p.ambient_conductance.value() / n;
        let flow = p.coolant_flow_capacity.value();
        let q_seg = heat.value() / n;
        let t_amb = p.ambient_temperature.value();

        // Sub-step for explicit stability: the fastest node time constant
        // is cc_seg / (h_seg + flow).
        let tau = cc_seg / (h_seg + flow + 1e-9);
        let sub_steps = (dt.value() / (0.25 * tau)).ceil().max(1.0) as usize;
        let h = dt.value() / sub_steps as f64;

        let mut seg: Vec<f64> = state.segments.iter().map(|t| t.value()).collect();
        let mut cool: Vec<f64> = state.coolant.iter().map(|t| t.value()).collect();

        for _ in 0..sub_steps {
            let mut d_seg = vec![0.0; self.segments];
            let mut d_cool = vec![0.0; self.segments];
            for i in 0..self.segments {
                // Battery segment: internal heat + coolant exchange +
                // neighbour conduction + ambient leak.
                let mut q = q_seg + h_seg * (cool[i] - seg[i]) + h_amb_seg * (t_amb - seg[i]);
                if i > 0 {
                    q += self.conduction * (seg[i - 1] - seg[i]);
                }
                if i + 1 < self.segments {
                    q += self.conduction * (seg[i + 1] - seg[i]);
                }
                d_seg[i] = q / cb_seg;

                // Coolant channel: exchange with its segment plus the
                // serial flow from the previous segment (or the inlet).
                let upstream = if i == 0 { inlet.value() } else { cool[i - 1] };
                let qc = h_seg * (seg[i] - cool[i]) + flow * (upstream - cool[i]);
                d_cool[i] = qc / cc_seg;
            }
            for i in 0..self.segments {
                seg[i] += h * d_seg[i];
                cool[i] += h * d_cool[i];
            }
        }

        MultiNodeState {
            segments: seg.into_iter().map(Kelvin::new).collect(),
            coolant: cool.into_iter().map(Kelvin::new).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ThermalModel, ThermalState};

    fn c(celsius: f64) -> Kelvin {
        Kelvin::from_celsius(celsius)
    }

    fn model(n: usize) -> MultiNodeModel {
        MultiNodeModel::new(ThermalParams::ev_pack(), n, 50.0).expect("valid")
    }

    #[test]
    fn single_segment_tracks_lumped_model() {
        let multi = model(1);
        let lumped = ThermalModel::new(ThermalParams::ev_pack()).unwrap();
        let mut ms = MultiNodeState::uniform(1, c(25.0));
        let mut ls = ThermalState::uniform(c(25.0));
        for _ in 0..600 {
            ms = multi.step(&ms, Watts::new(2_000.0), c(15.0), Seconds::new(1.0));
            ls = lumped.step_crank_nicolson(ls, Watts::new(2_000.0), c(15.0), Seconds::new(1.0));
        }
        assert!(
            (ms.segments[0].value() - ls.battery.value()).abs() < 0.3,
            "multi {:?} vs lumped {:?}",
            ms.segments[0],
            ls.battery
        );
    }

    #[test]
    fn downstream_segments_run_hotter() {
        // The coolant warms as it flows: segment N−1 must end up hotter
        // than segment 0 under uniform heat generation.
        let multi = model(6);
        let mut s = MultiNodeState::uniform(6, c(25.0));
        for _ in 0..1800 {
            s = multi.step(&s, Watts::new(3_000.0), c(15.0), Seconds::new(1.0));
        }
        assert!(
            s.segments[5] > s.segments[0],
            "flow direction gradient missing: {:?}",
            s.segments
        );
        assert!(s.spread().value() > 0.05, "spread {:?}", s.spread());
        // Coolant exits warmer than it entered.
        assert!(s.coolant[5] > c(15.0));
    }

    #[test]
    fn mean_tracks_lumped_model_under_cooling() {
        let multi = model(8);
        let lumped = ThermalModel::new(ThermalParams::ev_pack()).unwrap();
        let mut ms = MultiNodeState::uniform(8, c(32.0));
        let mut ls = ThermalState::uniform(c(32.0));
        for _ in 0..1200 {
            ms = multi.step(&ms, Watts::new(1_500.0), c(12.0), Seconds::new(1.0));
            ls = lumped.step_crank_nicolson(ls, Watts::new(1_500.0), c(12.0), Seconds::new(1.0));
        }
        // Serial coolant flow extracts heat slightly more effectively
        // than the lumped single-node refresh, so the discretised pack
        // runs a degree or so cooler — but must track within ~2 K.
        assert!(
            (ms.mean().value() - ls.battery.value()).abs() < 2.0,
            "mean {:?} vs lumped {:?}",
            ms.mean(),
            ls.battery
        );
        assert!(ms.mean() <= ls.battery + Kelvin::new(0.1));
    }

    #[test]
    fn stronger_conduction_flattens_the_gradient() {
        let weak = MultiNodeModel::new(ThermalParams::ev_pack(), 6, 5.0).unwrap();
        let strong = MultiNodeModel::new(ThermalParams::ev_pack(), 6, 2_000.0).unwrap();
        let mut ws = MultiNodeState::uniform(6, c(25.0));
        let mut ss = ws.clone();
        for _ in 0..1800 {
            ws = weak.step(&ws, Watts::new(3_000.0), c(15.0), Seconds::new(1.0));
            ss = strong.step(&ss, Watts::new(3_000.0), c(15.0), Seconds::new(1.0));
        }
        assert!(ss.spread() < ws.spread());
    }

    #[test]
    fn invalid_construction_rejected() {
        assert!(MultiNodeModel::new(ThermalParams::ev_pack(), 0, 10.0).is_err());
        assert!(MultiNodeModel::new(ThermalParams::ev_pack(), 4, -1.0).is_err());
    }

    #[test]
    #[should_panic(expected = "segment count mismatch")]
    fn mismatched_state_panics() {
        let m = model(4);
        let s = MultiNodeState::uniform(3, c(25.0));
        let _ = m.step(&s, Watts::ZERO, c(25.0), Seconds::new(1.0));
    }

    #[test]
    fn state_summaries() {
        let s = MultiNodeState {
            segments: vec![c(30.0), c(34.0), c(32.0)],
            coolant: vec![c(20.0); 3],
        };
        assert_eq!(s.max(), c(34.0));
        assert!((s.mean().value() - c(32.0).value()).abs() < 1e-9);
        assert!((s.spread().value() - 4.0).abs() < 1e-9);
    }
}
