//! Property-based tests: the converter must never create energy, and its
//! efficiency must be monotone in storage voltage.

use otem_converter::DcDcConverter;
use otem_units::{Volts, Watts};
use proptest::prelude::*;

proptest! {
    #[test]
    fn efficiency_bounded_and_conservative(
        p_kw in 0.1..60.0f64,
        v in 4.0..20.0f64,
    ) {
        let dc = DcDcConverter::ultracap_side();
        if let Ok(eta) = dc.efficiency(Watts::new(p_kw * 1000.0), Volts::new(v)) {
            prop_assert!(eta > 0.0 && eta <= 1.0, "η = {eta}");
        }
    }

    #[test]
    fn efficiency_monotone_in_voltage(
        p_kw in 1.0..40.0f64,
        v in 6.0..16.0f64,
        dv in 0.5..4.0f64,
    ) {
        let dc = DcDcConverter::ultracap_side();
        let p = Watts::new(p_kw * 1000.0);
        let lo = dc.efficiency(p, Volts::new(v));
        let hi = dc.efficiency(p, Volts::new(v + dv));
        if let (Ok(lo), Ok(hi)) = (lo, hi) {
            prop_assert!(hi >= lo, "η({}) = {hi} < η({}) = {lo}", v + dv, v);
        }
    }

    #[test]
    fn round_trip_loses_twice(
        p_kw in 1.0..30.0f64,
        v in 8.0..16.0f64,
    ) {
        // bus → storage → bus must return strictly less than sent.
        let dc = DcDcConverter::ultracap_side();
        let volts = Volts::new(v);
        let sent = Watts::new(p_kw * 1000.0);
        if let Ok(stored) = dc.output_for_input(sent, volts) {
            // Re-deliver the stored power to the bus.
            let loss_back = dc.loss(stored, volts);
            let returned = stored - loss_back;
            prop_assert!(returned < sent);
            // But still positive for sensible magnitudes.
            prop_assert!(returned.value() > 0.0);
        }
    }

    #[test]
    fn input_exceeds_output_on_discharge_path(
        p_kw in 0.5..50.0f64,
        v in 5.0..18.0f64,
    ) {
        let dc = DcDcConverter::ultracap_side();
        if let Ok(storage) = dc.input_for_output(Watts::new(p_kw * 1000.0), Volts::new(v)) {
            prop_assert!(storage.value() > p_kw * 1000.0);
        }
    }
}
