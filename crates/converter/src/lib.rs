//! DC/DC converter efficiency model for the OTEM HEES.
//!
//! Section II-C of the OTEM paper models each storage element's DC/DC
//! converter by a conversion-efficiency parameter `η_DC` that *degrades
//! as the element's voltage drops* — the mechanism that makes over-using
//! the ultracapacitor costly (its terminal voltage swings with √SoE,
//! Eq. 8) and that OTEM's cost function implicitly prices.
//!
//! Following the converter-aware power-management literature the paper
//! cites (Choi, Chang, Kim — TCAD 2007), losses decompose into a
//! quiescent term, a conduction term linear in current, and an ohmic term
//! quadratic in current:
//!
//! `P_loss(P, V) = P_0 + k_i·I + k_r·I²`, with `I = P/V`.
//!
//! Lower storage voltage ⇒ higher current for the same power ⇒ more loss.
//!
//! # Examples
//!
//! ```
//! use otem_converter::DcDcConverter;
//! use otem_units::{Volts, Watts};
//!
//! # fn main() -> Result<(), otem_converter::ConverterError> {
//! let dc = DcDcConverter::ultracap_side();
//! let full = dc.efficiency(Watts::new(10_000.0), Volts::new(16.0))?;
//! let sagged = dc.efficiency(Watts::new(10_000.0), Volts::new(8.0))?;
//! assert!(full > sagged); // voltage swing costs efficiency
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod converter;
mod error;
pub mod kernel;

pub use converter::DcDcConverter;
pub use error::ConverterError;
