//! The converter loss model and its forward/inverse power mappings.

use crate::error::ConverterError;
use otem_units::{Volts, Watts};
use serde::{Deserialize, Serialize};

/// A DC/DC converter between a storage element and the EV's DC bus.
///
/// Loss model: `P_loss = P_0 + k_i·|I| + k_r·I²` with `I = P/V` the
/// storage-side current. Power flowing in either direction pays the loss.
///
/// Two mappings are provided:
///
/// * [`DcDcConverter::input_for_output`] — how much storage power must be
///   drawn to deliver `P_out` onto the bus (discharge path),
/// * [`DcDcConverter::output_for_input`] — how much reaches the storage
///   when `P_in` is taken off the bus (charge path).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DcDcConverter {
    /// Quiescent (controller/switching) loss `P_0` in watts, paid
    /// whenever power flows.
    pub quiescent_loss: f64,
    /// Conduction loss coefficient `k_i` (V): loss linear in current.
    pub conduction_coefficient: f64,
    /// Ohmic loss coefficient `k_r` (Ω): loss quadratic in current.
    pub ohmic_coefficient: f64,
}

impl DcDcConverter {
    /// Converter preset for the high-voltage battery string (≈ 350 V):
    /// ≈ 97–98 % efficient across the load range.
    pub fn battery_side() -> Self {
        Self {
            quiescent_loss: 25.0,
            conduction_coefficient: 2.5,
            ohmic_coefficient: 0.02,
        }
    }

    /// Converter preset for the low-voltage ultracapacitor bank (≈ 16 V
    /// rated): efficiency is strongly voltage-dependent, dropping several
    /// points as the bank sags toward half voltage.
    pub fn ultracap_side() -> Self {
        Self {
            quiescent_loss: 15.0,
            conduction_coefficient: 0.12,
            ohmic_coefficient: 4.0e-5,
        }
    }

    /// An idealised lossless converter (baselines that ignore conversion
    /// losses, and tests).
    pub const fn lossless() -> Self {
        Self {
            quiescent_loss: 0.0,
            conduction_coefficient: 0.0,
            ohmic_coefficient: 0.0,
        }
    }

    /// Validates coefficient ranges.
    ///
    /// # Errors
    ///
    /// Returns [`ConverterError::InvalidParameter`] for negative
    /// coefficients.
    pub fn validate(&self) -> Result<(), ConverterError> {
        for (name, value) in [
            ("quiescent_loss", self.quiescent_loss),
            ("conduction_coefficient", self.conduction_coefficient),
            ("ohmic_coefficient", self.ohmic_coefficient),
        ] {
            if value < 0.0 || !value.is_finite() {
                return Err(ConverterError::InvalidParameter {
                    name,
                    value,
                    constraint: ">= 0 and finite",
                });
            }
        }
        Ok(())
    }

    /// Width of the quiescent-loss wake-up ramp (W); see
    /// [`crate::kernel::QUIESCENT_RAMP`].
    const QUIESCENT_RAMP: f64 = crate::kernel::QUIESCENT_RAMP;

    /// Loss for a given storage-side power magnitude at a given storage
    /// voltage.
    ///
    /// `P_loss = P_0·p/(p + 50 W) + k_i·|I| + k_r·I²` — the quiescent
    /// term ramps in smoothly as the converter wakes from idle.
    /// Delegates to the scalar-generic [`crate::kernel::loss`] (the `f64`
    /// instantiation is operation-identical to the historical inline
    /// body).
    #[inline]
    pub fn loss(&self, storage_power: Watts, storage_voltage: Volts) -> Watts {
        Watts::new(crate::kernel::loss(
            self.quiescent_loss,
            self.conduction_coefficient,
            self.ohmic_coefficient,
            storage_power.value(),
            storage_voltage.value(),
        ))
    }

    /// Partial derivatives of [`DcDcConverter::loss`] in the transfer
    /// magnitude and the storage voltage: `(∂loss/∂|P|, ∂loss/∂V)`.
    ///
    /// Matches the forward branches exactly: both partials are zero at
    /// zero transfer (the forward path early-outs there), and the voltage
    /// partial is zero below the 1 mV evaluation floor where the clamp
    /// is active.
    #[inline]
    pub fn loss_partials(&self, storage_power: Watts, storage_voltage: Volts) -> (f64, f64) {
        let p = storage_power.value().abs();
        if p == 0.0 {
            return (0.0, 0.0);
        }
        let v = storage_voltage.value().max(1e-3);
        let ramp = p + Self::QUIESCENT_RAMP;
        let d_p = self.quiescent_loss * Self::QUIESCENT_RAMP / (ramp * ramp)
            + self.conduction_coefficient / v
            + 2.0 * self.ohmic_coefficient * p / (v * v);
        let d_v = if storage_voltage.value() > 1e-3 {
            -self.conduction_coefficient * p / (v * v)
                - 2.0 * self.ohmic_coefficient * p * p / (v * v * v)
        } else {
            0.0
        };
        (d_p, d_v)
    }

    /// Partial derivatives of [`DcDcConverter::input_for_output`] at an
    /// already-solved operating point, by the implicit-function theorem
    /// on `x = P_out + loss(x, V)`:
    ///
    /// `(∂P_storage/∂P_bus, ∂P_storage/∂V) = (1/(1−L_p), ±L_v/(1−L_p))`
    ///
    /// where `L_p`, `L_v` are the loss partials at the converged storage
    /// power. Pass the value `input_for_output` returned (signed); signs
    /// are handled internally. Returns `None` at the saturation boundary
    /// `L_p ≥ 1`, where the inverse map is not differentiable.
    pub fn input_for_output_partials(
        &self,
        storage_power: Watts,
        storage_voltage: Volts,
    ) -> Option<(f64, f64)> {
        let x = storage_power.value();
        if x == 0.0 {
            return Some((1.0, 0.0));
        }
        let (l_p, l_v) = self.loss_partials(storage_power, storage_voltage);
        let gain = 1.0 - l_p;
        if gain <= 0.0 {
            return None;
        }
        Some((1.0 / gain, (l_v / gain) * x.signum()))
    }

    /// Partial derivatives of [`DcDcConverter::output_for_input`]:
    /// `(∂P_storage/∂P_bus, ∂P_storage/∂V) = (1−L_p, −L_v·sign(P))`.
    ///
    /// The power partial is direction-independent (both magnitudes and
    /// signs flip together); zero transfer maps to the identity slope,
    /// matching the forward early-out.
    pub fn output_for_input_partials(&self, bus_in: Watts, storage_voltage: Volts) -> (f64, f64) {
        let p = bus_in.value();
        if p == 0.0 {
            return (1.0, 0.0);
        }
        let (l_p, l_v) = self.loss_partials(bus_in, storage_voltage);
        (1.0 - l_p, -l_v * p.signum())
    }

    /// One-sided derivative limits of the bus → storage power maps as
    /// the transfer crosses zero: `(discharge, charge)` =
    /// `(1/(1−L₀), 1−L₀)` with `L₀ = P₀/RAMP + k_i/V` the marginal loss
    /// slope at idle.
    ///
    /// The loss model's `|P|` dependence makes zero transfer a genuine
    /// kink: a central finite difference straddling it measures the
    /// *mean* of these two limits, not either branch. Adjoint gradients
    /// that must agree with central differences at idle (the convention
    /// the MPC's golden traces were blessed with) need both limits to
    /// reproduce that mean. Falls back to `(1, 1)` — the forward maps'
    /// zero-transfer early-out slope — when the idle loss slope
    /// saturates (`L₀ ≥ 1`, only reachable at extreme voltage sag).
    pub fn zero_transfer_gain_limits(&self, storage_voltage: Volts) -> (f64, f64) {
        let v = storage_voltage.value().max(1e-3);
        let l0 = self.quiescent_loss / Self::QUIESCENT_RAMP + self.conduction_coefficient / v;
        let gain = 1.0 - l0;
        if gain <= 0.0 {
            return (1.0, 1.0);
        }
        (1.0 / gain, gain)
    }

    /// Discharge path: storage power that must be drawn so that `bus_out`
    /// is delivered to the bus. Solves
    /// `P_storage = P_bus + loss(P_storage, V)` for `P_storage`.
    ///
    /// # Errors
    ///
    /// Returns [`ConverterError::TransferInfeasible`] when no real
    /// solution exists (the converter saturates at this voltage) and
    /// [`ConverterError::InvalidParameter`] for a non-positive voltage.
    pub fn input_for_output(
        &self,
        bus_out: Watts,
        storage_voltage: Volts,
    ) -> Result<Watts, ConverterError> {
        let p_out = bus_out.value();
        if p_out == 0.0 {
            return Ok(Watts::ZERO);
        }
        let v = storage_voltage.value();
        if v <= 0.0 {
            return Err(ConverterError::InvalidParameter {
                name: "storage_voltage",
                value: v,
                constraint: "> 0 V",
            });
        }
        let p_out = p_out.abs();
        // Solve x − loss(x) = P_out in the magnitude domain via the
        // scalar-generic kernel: a closed-form constant-quiescent seed
        // refined by fixed-point iteration (a contraction in the feasible
        // regime — ∂loss/∂x < 1).
        match crate::kernel::input_for_output_magnitude(
            self.quiescent_loss,
            self.conduction_coefficient,
            self.ohmic_coefficient,
            p_out,
            v,
        ) {
            Some(x) => Ok(Watts::new(x.copysign(bus_out.value()))),
            None => Err(ConverterError::TransferInfeasible {
                requested: p_out,
                voltage: v,
            }),
        }
    }

    /// Charge path: storage power received when `bus_in` is taken off the
    /// bus: `P_storage = P_bus − loss(P_bus, V)`.
    ///
    /// # Errors
    ///
    /// Returns [`ConverterError::TransferInfeasible`] when the loss
    /// exceeds the supplied power (nothing would reach the storage).
    pub fn output_for_input(
        &self,
        bus_in: Watts,
        storage_voltage: Volts,
    ) -> Result<Watts, ConverterError> {
        let p_in = bus_in.value();
        if p_in == 0.0 {
            return Ok(Watts::ZERO);
        }
        match crate::kernel::output_for_input(
            self.quiescent_loss,
            self.conduction_coefficient,
            self.ohmic_coefficient,
            p_in,
            storage_voltage.value(),
        ) {
            Some(delivered) => Ok(Watts::new(delivered)),
            None => Err(ConverterError::TransferInfeasible {
                requested: p_in.abs(),
                voltage: storage_voltage.value(),
            }),
        }
    }

    /// Conversion efficiency for a transfer of the given bus-side power at
    /// the given storage voltage (paper's `η_DC`).
    ///
    /// # Errors
    ///
    /// Propagates [`ConverterError::TransferInfeasible`] from the inverse
    /// mapping.
    pub fn efficiency(
        &self,
        bus_power: Watts,
        storage_voltage: Volts,
    ) -> Result<f64, ConverterError> {
        let p = bus_power.value().abs();
        if p == 0.0 {
            return Ok(1.0);
        }
        let storage = self.input_for_output(Watts::new(p), storage_voltage)?;
        Ok(p / storage.value())
    }
}

impl Default for DcDcConverter {
    /// The ultracapacitor-side preset (the voltage-sensitive one the
    /// paper's analysis centres on).
    fn default() -> Self {
        Self::ultracap_side()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_converter_is_identity() {
        let dc = DcDcConverter::lossless();
        let p = Watts::new(12_345.0);
        let v = Volts::new(12.0);
        assert_eq!(dc.input_for_output(p, v).unwrap(), p);
        assert_eq!(dc.output_for_input(p, v).unwrap(), p);
        assert_eq!(dc.efficiency(p, v).unwrap(), 1.0);
    }

    #[test]
    fn zero_transfer_gain_limits_match_one_sided_differences() {
        let v = Volts::new(350.0);
        for dc in [
            DcDcConverter::battery_side(),
            DcDcConverter::ultracap_side(),
        ] {
            let (g_dis, g_chg) = dc.zero_transfer_gain_limits(v);
            let h = 1e-2;
            let fd_dis = dc.input_for_output(Watts::new(h), v).unwrap().value() / h;
            let fd_chg = dc.output_for_input(Watts::new(-h), v).unwrap().value() / -h;
            assert!((g_dis - fd_dis).abs() < 1e-3 * g_dis, "{g_dis} vs {fd_dis}");
            assert!((g_chg - fd_chg).abs() < 1e-3 * g_chg, "{g_chg} vs {fd_chg}");
            // The limits bracket the forward early-out slope of 1.
            assert!(g_chg < 1.0 && g_dis > 1.0);
        }
        // Lossless: no kink, both limits are the identity.
        assert_eq!(
            DcDcConverter::lossless().zero_transfer_gain_limits(v),
            (1.0, 1.0)
        );
    }

    #[test]
    fn efficiency_reasonable_at_rated_voltage() {
        let dc = DcDcConverter::ultracap_side();
        let eta = dc
            .efficiency(Watts::new(10_000.0), Volts::new(16.0))
            .unwrap();
        assert!((0.88..0.99).contains(&eta), "η = {eta}");
    }

    #[test]
    fn efficiency_degrades_as_voltage_sags() {
        let dc = DcDcConverter::ultracap_side();
        let p = Watts::new(10_000.0);
        let full = dc.efficiency(p, Volts::new(16.0)).unwrap();
        let half = dc.efficiency(p, Volts::new(8.0)).unwrap();
        let low = dc.efficiency(p, Volts::new(5.0)).unwrap();
        assert!(full > half && half > low, "{full} {half} {low}");
        assert!(full - low > 0.02, "swing should cost > 2 points");
    }

    #[test]
    fn forward_inverse_round_trip() {
        let dc = DcDcConverter::ultracap_side();
        let v = Volts::new(12.0);
        let bus = Watts::new(8_000.0);
        let storage = dc.input_for_output(bus, v).unwrap();
        assert!(storage > bus);
        // Pushing that storage power forward re-delivers the bus power:
        // storage − loss(storage) = bus.
        let loss = dc.loss(storage, v);
        assert!((storage.value() - loss.value() - bus.value()).abs() < 1e-6);
    }

    #[test]
    fn charge_path_loses_power() {
        let dc = DcDcConverter::ultracap_side();
        let v = Volts::new(14.0);
        let delivered = dc.output_for_input(Watts::new(5_000.0), v).unwrap();
        assert!(delivered.value() < 5_000.0);
        assert!(delivered.value() > 4_000.0);
    }

    #[test]
    fn signs_are_preserved() {
        let dc = DcDcConverter::ultracap_side();
        let v = Volts::new(14.0);
        assert!(
            dc.input_for_output(Watts::new(-6_000.0), v)
                .unwrap()
                .value()
                < 0.0
        );
        assert!(
            dc.output_for_input(Watts::new(-6_000.0), v)
                .unwrap()
                .value()
                < 0.0
        );
    }

    #[test]
    fn battery_side_is_more_efficient_than_ultracap_side_at_sag() {
        let bat = DcDcConverter::battery_side();
        let cap = DcDcConverter::ultracap_side();
        let p = Watts::new(20_000.0);
        let eta_bat = bat.efficiency(p, Volts::new(340.0)).unwrap();
        let eta_cap = cap.efficiency(p, Volts::new(8.0)).unwrap();
        assert!(eta_bat > eta_cap);
        assert!(eta_bat > 0.95, "battery-side η = {eta_bat}");
    }

    #[test]
    fn infeasible_transfer_rejected() {
        let dc = DcDcConverter::ultracap_side();
        // At 0.5 V the current for 50 kW would be 100 kA — the quadratic
        // has no positive root.
        assert!(matches!(
            dc.input_for_output(Watts::new(50_000.0), Volts::new(0.5)),
            Err(ConverterError::TransferInfeasible { .. })
        ));
    }

    #[test]
    fn tiny_transfer_dominated_by_quiescent_loss() {
        let dc = DcDcConverter::ultracap_side();
        let tiny = dc.efficiency(Watts::new(30.0), Volts::new(16.0)).unwrap();
        let moderate = dc
            .efficiency(Watts::new(5_000.0), Volts::new(16.0))
            .unwrap();
        assert!(tiny < 0.90, "η = {tiny} should be poor at 30 W");
        assert!(moderate > tiny + 0.05, "light-load collapse missing");
    }

    #[test]
    fn loss_is_smooth_through_zero() {
        // The wake-up ramp keeps the loss differentiable at zero — no
        // fixed quiescent jump the MPC's gradient would trip over.
        let dc = DcDcConverter::ultracap_side();
        let v = Volts::new(16.0);
        let small = dc.loss(Watts::new(1.0), v).value();
        assert!(small < 1.0, "loss({small}) at 1 W transfer");
        let smaller = dc.loss(Watts::new(0.1), v).value();
        assert!(smaller < small / 5.0, "ramp not proportional: {smaller}");
    }

    #[test]
    fn zero_power_zero_loss() {
        let dc = DcDcConverter::ultracap_side();
        assert_eq!(dc.loss(Watts::ZERO, Volts::new(16.0)), Watts::ZERO);
        assert_eq!(
            dc.input_for_output(Watts::ZERO, Volts::new(16.0)).unwrap(),
            Watts::ZERO
        );
        assert_eq!(dc.efficiency(Watts::ZERO, Volts::new(16.0)).unwrap(), 1.0);
    }

    #[test]
    fn loss_partials_match_finite_differences() {
        let dc = DcDcConverter::ultracap_side();
        for (p, v) in [(8_000.0, 14.0), (300.0, 9.0), (-5_000.0, 12.0)] {
            let (d_p, d_v) = dc.loss_partials(Watts::new(p), Volts::new(v));
            let h = 1e-3;
            let mag = p.abs();
            let fd_p = (dc.loss(Watts::new(mag + h), Volts::new(v)).value()
                - dc.loss(Watts::new(mag - h), Volts::new(v)).value())
                / (2.0 * h);
            let fd_v = (dc.loss(Watts::new(p), Volts::new(v + h)).value()
                - dc.loss(Watts::new(p), Volts::new(v - h)).value())
                / (2.0 * h);
            assert!((d_p - fd_p).abs() <= 1e-5 * fd_p.abs(), "{d_p} vs {fd_p}");
            assert!((d_v - fd_v).abs() <= 1e-5 * fd_v.abs(), "{d_v} vs {fd_v}");
        }
        assert_eq!(dc.loss_partials(Watts::ZERO, Volts::new(16.0)), (0.0, 0.0));
    }

    #[test]
    fn inverse_map_partials_match_finite_differences() {
        let dc = DcDcConverter::ultracap_side();
        for (bus, v) in [(8_000.0, 14.0), (-6_000.0, 12.0), (400.0, 16.0)] {
            let storage = dc.input_for_output(Watts::new(bus), Volts::new(v)).unwrap();
            let (d_bus, d_v) = dc
                .input_for_output_partials(storage, Volts::new(v))
                .expect("away from saturation");
            let h = 1e-2;
            let at = |bus: f64, v: f64| {
                dc.input_for_output(Watts::new(bus), Volts::new(v))
                    .unwrap()
                    .value()
            };
            let fd_bus = (at(bus + h, v) - at(bus - h, v)) / (2.0 * h);
            let fd_v = (at(bus, v + h) - at(bus, v - h)) / (2.0 * h);
            // The fixed point is solved to 1e-9 relative tolerance; hold
            // the IFT slopes to a slightly looser bar.
            assert!(
                (d_bus - fd_bus).abs() <= 1e-4 * fd_bus.abs(),
                "∂x/∂bus {d_bus} vs FD {fd_bus}"
            );
            assert!(
                (d_v - fd_v).abs() <= 1e-3 * fd_v.abs().max(1e-6),
                "∂x/∂V {d_v} vs FD {fd_v}"
            );
        }
    }

    #[test]
    fn forward_map_partials_match_finite_differences() {
        let dc = DcDcConverter::ultracap_side();
        for (bus, v) in [(5_000.0, 14.0), (-7_000.0, 10.0)] {
            let (d_bus, d_v) = dc.output_for_input_partials(Watts::new(bus), Volts::new(v));
            let h = 1e-2;
            let at = |bus: f64, v: f64| {
                dc.output_for_input(Watts::new(bus), Volts::new(v))
                    .unwrap()
                    .value()
            };
            let fd_bus = (at(bus + h, v) - at(bus - h, v)) / (2.0 * h);
            let fd_v = (at(bus, v + h) - at(bus, v - h)) / (2.0 * h);
            assert!(
                (d_bus - fd_bus).abs() <= 1e-5 * fd_bus.abs(),
                "∂out/∂bus {d_bus} vs FD {fd_bus}"
            );
            assert!(
                (d_v - fd_v).abs() <= 1e-5 * fd_v.abs().max(1e-9),
                "∂out/∂V {d_v} vs FD {fd_v}"
            );
        }
        assert_eq!(
            dc.output_for_input_partials(Watts::ZERO, Volts::new(16.0)),
            (1.0, 0.0)
        );
    }

    #[test]
    fn inverse_partials_none_at_saturation() {
        // At a deeply sagged voltage the marginal loss exceeds unity and
        // the inverse map folds back; the IFT slope must refuse there.
        let dc = DcDcConverter::ultracap_side();
        // L_p = k_i/v̄ + … > 1 when v̄ < k_i (= 0.12 V).
        let result = dc.input_for_output_partials(Watts::new(100.0), Volts::new(0.05));
        assert!(result.is_none());
    }

    #[test]
    fn negative_coefficients_rejected() {
        let dc = DcDcConverter {
            quiescent_loss: -1.0,
            ..DcDcConverter::ultracap_side()
        };
        assert!(dc.validate().is_err());
        assert!(DcDcConverter::ultracap_side().validate().is_ok());
    }
}
