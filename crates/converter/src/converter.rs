//! The converter loss model and its forward/inverse power mappings.

use crate::error::ConverterError;
use otem_units::{Volts, Watts};
use serde::{Deserialize, Serialize};

/// A DC/DC converter between a storage element and the EV's DC bus.
///
/// Loss model: `P_loss = P_0 + k_i·|I| + k_r·I²` with `I = P/V` the
/// storage-side current. Power flowing in either direction pays the loss.
///
/// Two mappings are provided:
///
/// * [`DcDcConverter::input_for_output`] — how much storage power must be
///   drawn to deliver `P_out` onto the bus (discharge path),
/// * [`DcDcConverter::output_for_input`] — how much reaches the storage
///   when `P_in` is taken off the bus (charge path).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DcDcConverter {
    /// Quiescent (controller/switching) loss `P_0` in watts, paid
    /// whenever power flows.
    pub quiescent_loss: f64,
    /// Conduction loss coefficient `k_i` (V): loss linear in current.
    pub conduction_coefficient: f64,
    /// Ohmic loss coefficient `k_r` (Ω): loss quadratic in current.
    pub ohmic_coefficient: f64,
}

impl DcDcConverter {
    /// Converter preset for the high-voltage battery string (≈ 350 V):
    /// ≈ 97–98 % efficient across the load range.
    pub fn battery_side() -> Self {
        Self {
            quiescent_loss: 25.0,
            conduction_coefficient: 2.5,
            ohmic_coefficient: 0.02,
        }
    }

    /// Converter preset for the low-voltage ultracapacitor bank (≈ 16 V
    /// rated): efficiency is strongly voltage-dependent, dropping several
    /// points as the bank sags toward half voltage.
    pub fn ultracap_side() -> Self {
        Self {
            quiescent_loss: 15.0,
            conduction_coefficient: 0.12,
            ohmic_coefficient: 4.0e-5,
        }
    }

    /// An idealised lossless converter (baselines that ignore conversion
    /// losses, and tests).
    pub const fn lossless() -> Self {
        Self {
            quiescent_loss: 0.0,
            conduction_coefficient: 0.0,
            ohmic_coefficient: 0.0,
        }
    }

    /// Validates coefficient ranges.
    ///
    /// # Errors
    ///
    /// Returns [`ConverterError::InvalidParameter`] for negative
    /// coefficients.
    pub fn validate(&self) -> Result<(), ConverterError> {
        for (name, value) in [
            ("quiescent_loss", self.quiescent_loss),
            ("conduction_coefficient", self.conduction_coefficient),
            ("ohmic_coefficient", self.ohmic_coefficient),
        ] {
            if value < 0.0 || !value.is_finite() {
                return Err(ConverterError::InvalidParameter {
                    name,
                    value,
                    constraint: ">= 0 and finite",
                });
            }
        }
        Ok(())
    }

    /// Width of the quiescent-loss wake-up ramp (W): below this power the
    /// controller overhead fades toward zero, keeping the loss model
    /// smooth at zero transfer (the MPC differentiates through it).
    const QUIESCENT_RAMP: f64 = 50.0;

    /// Loss for a given storage-side power magnitude at a given storage
    /// voltage.
    ///
    /// `P_loss = P_0·p/(p + 50 W) + k_i·|I| + k_r·I²` — the quiescent
    /// term ramps in smoothly as the converter wakes from idle.
    #[inline]
    pub fn loss(&self, storage_power: Watts, storage_voltage: Volts) -> Watts {
        let p = storage_power.value().abs();
        if p == 0.0 {
            return Watts::ZERO;
        }
        let v = storage_voltage.value().max(1e-3);
        let i = p / v;
        let quiescent = self.quiescent_loss * p / (p + Self::QUIESCENT_RAMP);
        Watts::new(quiescent + self.conduction_coefficient * i + self.ohmic_coefficient * i * i)
    }

    /// Discharge path: storage power that must be drawn so that `bus_out`
    /// is delivered to the bus. Solves
    /// `P_storage = P_bus + loss(P_storage, V)` for `P_storage`.
    ///
    /// # Errors
    ///
    /// Returns [`ConverterError::TransferInfeasible`] when no real
    /// solution exists (the converter saturates at this voltage) and
    /// [`ConverterError::InvalidParameter`] for a non-positive voltage.
    pub fn input_for_output(
        &self,
        bus_out: Watts,
        storage_voltage: Volts,
    ) -> Result<Watts, ConverterError> {
        let p_out = bus_out.value();
        if p_out == 0.0 {
            return Ok(Watts::ZERO);
        }
        let v = storage_voltage.value();
        if v <= 0.0 {
            return Err(ConverterError::InvalidParameter {
                name: "storage_voltage",
                value: v,
                constraint: "> 0 V",
            });
        }
        let p_out = p_out.abs();
        // Solve x − loss(x) = P_out by fixed-point iteration from the
        // constant-quiescent closed form. The iteration is a contraction
        // (∂loss/∂x < 1 in the feasible regime) and converges in a
        // handful of rounds.
        let a = self.ohmic_coefficient / (v * v);
        let b = self.conduction_coefficient / v - 1.0;
        let c = p_out + self.quiescent_loss;
        let seed = if a == 0.0 {
            if b >= 0.0 {
                return Err(ConverterError::TransferInfeasible {
                    requested: p_out,
                    voltage: v,
                });
            }
            -c / b
        } else {
            let disc = b * b - 4.0 * a * c;
            if disc < 0.0 {
                return Err(ConverterError::TransferInfeasible {
                    requested: p_out,
                    voltage: v,
                });
            }
            (-b - disc.sqrt()) / (2.0 * a)
        };
        if !seed.is_finite() || seed <= 0.0 {
            return Err(ConverterError::TransferInfeasible {
                requested: p_out,
                voltage: v,
            });
        }
        let mut x = seed;
        for _ in 0..30 {
            let next = p_out + self.loss(Watts::new(x), storage_voltage).value();
            if (next - x).abs() < 1e-9 * x.max(1.0) {
                x = next;
                break;
            }
            x = next;
        }
        if !x.is_finite() || x <= 0.0 {
            return Err(ConverterError::TransferInfeasible {
                requested: p_out,
                voltage: v,
            });
        }
        Ok(Watts::new(x.copysign(bus_out.value())))
    }

    /// Charge path: storage power received when `bus_in` is taken off the
    /// bus: `P_storage = P_bus − loss(P_bus, V)`.
    ///
    /// # Errors
    ///
    /// Returns [`ConverterError::TransferInfeasible`] when the loss
    /// exceeds the supplied power (nothing would reach the storage).
    pub fn output_for_input(
        &self,
        bus_in: Watts,
        storage_voltage: Volts,
    ) -> Result<Watts, ConverterError> {
        let p_in = bus_in.value();
        if p_in == 0.0 {
            return Ok(Watts::ZERO);
        }
        let magnitude = p_in.abs();
        let loss = self.loss(Watts::new(magnitude), storage_voltage).value();
        let delivered = magnitude - loss;
        if delivered <= 0.0 {
            return Err(ConverterError::TransferInfeasible {
                requested: magnitude,
                voltage: storage_voltage.value(),
            });
        }
        Ok(Watts::new(delivered.copysign(p_in)))
    }

    /// Conversion efficiency for a transfer of the given bus-side power at
    /// the given storage voltage (paper's `η_DC`).
    ///
    /// # Errors
    ///
    /// Propagates [`ConverterError::TransferInfeasible`] from the inverse
    /// mapping.
    pub fn efficiency(
        &self,
        bus_power: Watts,
        storage_voltage: Volts,
    ) -> Result<f64, ConverterError> {
        let p = bus_power.value().abs();
        if p == 0.0 {
            return Ok(1.0);
        }
        let storage = self.input_for_output(Watts::new(p), storage_voltage)?;
        Ok(p / storage.value())
    }
}

impl Default for DcDcConverter {
    /// The ultracapacitor-side preset (the voltage-sensitive one the
    /// paper's analysis centres on).
    fn default() -> Self {
        Self::ultracap_side()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_converter_is_identity() {
        let dc = DcDcConverter::lossless();
        let p = Watts::new(12_345.0);
        let v = Volts::new(12.0);
        assert_eq!(dc.input_for_output(p, v).unwrap(), p);
        assert_eq!(dc.output_for_input(p, v).unwrap(), p);
        assert_eq!(dc.efficiency(p, v).unwrap(), 1.0);
    }

    #[test]
    fn efficiency_reasonable_at_rated_voltage() {
        let dc = DcDcConverter::ultracap_side();
        let eta = dc
            .efficiency(Watts::new(10_000.0), Volts::new(16.0))
            .unwrap();
        assert!((0.88..0.99).contains(&eta), "η = {eta}");
    }

    #[test]
    fn efficiency_degrades_as_voltage_sags() {
        let dc = DcDcConverter::ultracap_side();
        let p = Watts::new(10_000.0);
        let full = dc.efficiency(p, Volts::new(16.0)).unwrap();
        let half = dc.efficiency(p, Volts::new(8.0)).unwrap();
        let low = dc.efficiency(p, Volts::new(5.0)).unwrap();
        assert!(full > half && half > low, "{full} {half} {low}");
        assert!(full - low > 0.02, "swing should cost > 2 points");
    }

    #[test]
    fn forward_inverse_round_trip() {
        let dc = DcDcConverter::ultracap_side();
        let v = Volts::new(12.0);
        let bus = Watts::new(8_000.0);
        let storage = dc.input_for_output(bus, v).unwrap();
        assert!(storage > bus);
        // Pushing that storage power forward re-delivers the bus power:
        // storage − loss(storage) = bus.
        let loss = dc.loss(storage, v);
        assert!((storage.value() - loss.value() - bus.value()).abs() < 1e-6);
    }

    #[test]
    fn charge_path_loses_power() {
        let dc = DcDcConverter::ultracap_side();
        let v = Volts::new(14.0);
        let delivered = dc.output_for_input(Watts::new(5_000.0), v).unwrap();
        assert!(delivered.value() < 5_000.0);
        assert!(delivered.value() > 4_000.0);
    }

    #[test]
    fn signs_are_preserved() {
        let dc = DcDcConverter::ultracap_side();
        let v = Volts::new(14.0);
        assert!(
            dc.input_for_output(Watts::new(-6_000.0), v)
                .unwrap()
                .value()
                < 0.0
        );
        assert!(
            dc.output_for_input(Watts::new(-6_000.0), v)
                .unwrap()
                .value()
                < 0.0
        );
    }

    #[test]
    fn battery_side_is_more_efficient_than_ultracap_side_at_sag() {
        let bat = DcDcConverter::battery_side();
        let cap = DcDcConverter::ultracap_side();
        let p = Watts::new(20_000.0);
        let eta_bat = bat.efficiency(p, Volts::new(340.0)).unwrap();
        let eta_cap = cap.efficiency(p, Volts::new(8.0)).unwrap();
        assert!(eta_bat > eta_cap);
        assert!(eta_bat > 0.95, "battery-side η = {eta_bat}");
    }

    #[test]
    fn infeasible_transfer_rejected() {
        let dc = DcDcConverter::ultracap_side();
        // At 0.5 V the current for 50 kW would be 100 kA — the quadratic
        // has no positive root.
        assert!(matches!(
            dc.input_for_output(Watts::new(50_000.0), Volts::new(0.5)),
            Err(ConverterError::TransferInfeasible { .. })
        ));
    }

    #[test]
    fn tiny_transfer_dominated_by_quiescent_loss() {
        let dc = DcDcConverter::ultracap_side();
        let tiny = dc.efficiency(Watts::new(30.0), Volts::new(16.0)).unwrap();
        let moderate = dc
            .efficiency(Watts::new(5_000.0), Volts::new(16.0))
            .unwrap();
        assert!(tiny < 0.90, "η = {tiny} should be poor at 30 W");
        assert!(moderate > tiny + 0.05, "light-load collapse missing");
    }

    #[test]
    fn loss_is_smooth_through_zero() {
        // The wake-up ramp keeps the loss differentiable at zero — no
        // fixed quiescent jump the MPC's gradient would trip over.
        let dc = DcDcConverter::ultracap_side();
        let v = Volts::new(16.0);
        let small = dc.loss(Watts::new(1.0), v).value();
        assert!(small < 1.0, "loss({small}) at 1 W transfer");
        let smaller = dc.loss(Watts::new(0.1), v).value();
        assert!(smaller < small / 5.0, "ramp not proportional: {smaller}");
    }

    #[test]
    fn zero_power_zero_loss() {
        let dc = DcDcConverter::ultracap_side();
        assert_eq!(dc.loss(Watts::ZERO, Volts::new(16.0)), Watts::ZERO);
        assert_eq!(
            dc.input_for_output(Watts::ZERO, Volts::new(16.0)).unwrap(),
            Watts::ZERO
        );
        assert_eq!(dc.efficiency(Watts::ZERO, Volts::new(16.0)).unwrap(), 1.0);
    }

    #[test]
    fn negative_coefficients_rejected() {
        let dc = DcDcConverter {
            quiescent_loss: -1.0,
            ..DcDcConverter::ultracap_side()
        };
        assert!(dc.validate().is_err());
        assert!(DcDcConverter::ultracap_side().validate().is_ok());
    }
}
