//! Scalar-generic converter step math.
//!
//! The loss model and both power mappings of [`crate::DcDcConverter`],
//! written once against [`otem_units::Scalar`] and monomorphised per
//! scalar type. The concrete `f64` methods on `DcDcConverter` delegate
//! here — the `f64` instantiation performs the *same operations in the
//! same order* as the pre-refactor hand-written code, so delegation is
//! bit-identical (the contract the golden traces pin). The batched SoA
//! rollout kernel and the `f32` stress lanes call these functions
//! directly.

use otem_units::Scalar;

/// Width of the quiescent-loss wake-up ramp (W): below this power the
/// controller overhead fades toward zero, keeping the loss model smooth
/// at zero transfer (the MPC differentiates through it).
pub const QUIESCENT_RAMP: f64 = 50.0;

/// Converter loss for a storage-side transfer of `power` (signed; only
/// the magnitude matters) at raw storage voltage `voltage` (clamped to
/// the 1 mV evaluation floor internally):
/// `P_loss = P_0·p/(p + 50 W) + k_i·|I| + k_r·I²` with `I = p/V`.
#[inline]
pub fn loss<S: Scalar>(quiescent: S, conduction: S, ohmic: S, power: S, voltage: S) -> S {
    let p = power.abs();
    if p == S::ZERO {
        return S::ZERO;
    }
    let v = voltage.max(S::from_f64(1e-3));
    let i = p / v;
    let ramp_in = quiescent * p / (p + S::from_f64(QUIESCENT_RAMP));
    ramp_in + conduction * i + ohmic * i * i
}

/// Discharge-path solve in the magnitude domain: the storage power
/// `x > 0` satisfying `x = p_out + loss(x, V)`, for a positive bus
/// delivery `p_out` at voltage `v > 0`. Quadratic closed-form seed (for
/// the constant-quiescent approximation) refined by ≤ 30 fixed-point
/// rounds to `1e-9` relative tolerance. Returns `None` when the converter
/// saturates at this voltage (no real, positive solution).
#[inline]
pub fn input_for_output_magnitude<S: Scalar>(
    quiescent: S,
    conduction: S,
    ohmic: S,
    p_out: S,
    v: S,
) -> Option<S> {
    let a = ohmic / (v * v);
    let b = conduction / v - S::ONE;
    let c = p_out + quiescent;
    let seed = if a == S::ZERO {
        if b >= S::ZERO {
            return None;
        }
        -c / b
    } else {
        let disc = b * b - S::from_f64(4.0) * a * c;
        if disc < S::ZERO {
            return None;
        }
        (-b - disc.sqrt()) / (S::from_f64(2.0) * a)
    };
    if !seed.is_finite() || seed <= S::ZERO {
        return None;
    }
    let mut x = seed;
    for _ in 0..30 {
        let next = p_out + loss(quiescent, conduction, ohmic, x, v);
        if (next - x).abs() < S::from_f64(1e-9) * x.max(S::ONE) {
            x = next;
            break;
        }
        x = next;
    }
    if !x.is_finite() || x <= S::ZERO {
        return None;
    }
    Some(x)
}

/// Charge path: storage power received when `bus_in` (signed) is taken
/// off the bus at voltage `voltage`:
/// `P_storage = P_bus − loss(P_bus, V)`, sign-preserving. Returns `None`
/// when the loss consumes the whole transfer (nothing reaches storage).
#[inline]
pub fn output_for_input<S: Scalar>(
    quiescent: S,
    conduction: S,
    ohmic: S,
    bus_in: S,
    voltage: S,
) -> Option<S> {
    let magnitude = bus_in.abs();
    let step_loss = loss(quiescent, conduction, ohmic, magnitude, voltage);
    let delivered = magnitude - step_loss;
    if delivered <= S::ZERO {
        return None;
    }
    Some(delivered.copysign(bus_in))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magnitude_solve_round_trips() {
        // x − loss(x) must reproduce the requested bus power.
        let (q, ki, kr) = (15.0_f64, 0.12, 4.0e-5);
        let x = input_for_output_magnitude(q, ki, kr, 8_000.0, 12.0).expect("feasible");
        let back = x - loss(q, ki, kr, x, 12.0);
        assert!((back - 8_000.0).abs() < 1e-6, "round trip: {back}");
    }

    #[test]
    fn saturated_transfer_is_none() {
        assert!(input_for_output_magnitude(15.0_f64, 0.12, 4.0e-5, 50_000.0, 0.5).is_none());
    }

    #[test]
    fn charge_path_preserves_sign_and_loses_power() {
        let out = output_for_input(15.0_f64, 0.12, 4.0e-5, -5_000.0, 14.0).expect("feasible");
        assert!(out < 0.0 && out.abs() < 5_000.0);
    }

    #[cfg(feature = "f32")]
    #[test]
    fn f32_lanes_track_f64_within_single_precision() {
        let wide = input_for_output_magnitude(15.0_f64, 0.12, 4.0e-5, 8_000.0, 12.0).unwrap();
        let narrow =
            input_for_output_magnitude(15.0_f32, 0.12, 4.0e-5, 8_000.0, 12.0).unwrap() as f64;
        assert!((wide - narrow).abs() < 1e-3 * wide, "{wide} vs {narrow}");
    }
}
