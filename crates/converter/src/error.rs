//! Error type for the converter model.

use std::error::Error;
use std::fmt;

/// Errors returned by the DC/DC converter model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConverterError {
    /// A parameter was outside its physically meaningful range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable constraint that was violated.
        constraint: &'static str,
    },
    /// The conversion is infeasible: the requested transfer cannot be
    /// sustained at the given storage voltage (losses would exceed the
    /// input).
    TransferInfeasible {
        /// Requested power magnitude (W).
        requested: f64,
        /// Storage-side voltage at the time (V).
        voltage: f64,
    },
}

impl fmt::Display for ConverterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(
                f,
                "invalid converter parameter {name} = {value}: must satisfy {constraint}"
            ),
            Self::TransferInfeasible { requested, voltage } => write!(
                f,
                "converter cannot transfer {requested} W at storage voltage {voltage} V"
            ),
        }
    }
}

impl Error for ConverterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_meaningful() {
        let e = ConverterError::TransferInfeasible {
            requested: 5_000.0,
            voltage: 1.0,
        };
        assert!(e.to_string().contains("5000"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConverterError>();
    }
}
