//! Semi-active HEES architectures (Cao & Emadi [20], the design space
//! the paper's related work surveys): exactly one storage sits behind a
//! DC/DC converter while the other couples directly to the bus.
//!
//! * [`SemiActiveHees::cap_converted`] — battery directly on the bus,
//!   ultracapacitor behind the converter. The common commercial choice:
//!   the bus voltage stays stiff (battery-pinned) and the bank's wide
//!   voltage swing is absorbed by its converter.
//! * [`SemiActiveHees::battery_converted`] — ultracapacitor directly on
//!   the bus, battery behind the converter. Decouples battery current
//!   from load transients completely, at the cost of converting *all*
//!   battery power.
//!
//! Both take one commanded degree of freedom (the converted storage's
//! bus power); the direct storage absorbs the remainder by circuit law.

use crate::error::HeesError;
use crate::pack_domain_bank;
use crate::step::HeesStep;
use otem_battery::{BatteryPack, CellParams, PackConfig};
use otem_converter::DcDcConverter;
use otem_ultracap::{UltracapBank, UltracapParams};
use otem_units::{Farads, Kelvin, Ratio, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Which storage is behind the converter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConvertedSide {
    /// Ultracapacitor behind the converter; battery direct.
    Ultracap,
    /// Battery behind the converter; ultracapacitor direct.
    Battery,
}

/// A semi-active architecture: one converter, one direct coupling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SemiActiveHees {
    battery: BatteryPack,
    cap: UltracapBank,
    converter: DcDcConverter,
    side: ConvertedSide,
}

impl SemiActiveHees {
    /// Battery-direct / cap-converted preset for the paper's EV: the
    /// bank keeps its native 16 V rating behind an ultracap-side
    /// converter.
    ///
    /// # Errors
    ///
    /// Returns [`HeesError`] when any component fails validation.
    pub fn cap_converted(capacitance: Farads) -> Result<Self, HeesError> {
        let battery = BatteryPack::new(CellParams::ncr18650a(), PackConfig::compact_ev())?;
        let converter = DcDcConverter::ultracap_side();
        converter.validate()?;
        Ok(Self {
            battery,
            cap: UltracapBank::new(UltracapParams::paper_bank(capacitance))?,
            converter,
            side: ConvertedSide::Ultracap,
        })
    }

    /// Cap-direct / battery-converted preset: the bank is scaled into
    /// the bus voltage domain (it *is* the bus), the battery sits behind
    /// a high-voltage converter.
    ///
    /// # Errors
    ///
    /// Returns [`HeesError`] when any component fails validation.
    pub fn battery_converted(capacitance: Farads) -> Result<Self, HeesError> {
        let battery = BatteryPack::new(CellParams::ncr18650a(), PackConfig::compact_ev())?;
        let rated = battery.open_circuit_voltage();
        let converter = DcDcConverter::battery_side();
        converter.validate()?;
        Ok(Self {
            cap: UltracapBank::new(pack_domain_bank(capacitance, rated))?,
            battery,
            converter,
            side: ConvertedSide::Battery,
        })
    }

    /// Which storage is converted.
    pub fn side(&self) -> ConvertedSide {
        self.side
    }

    /// Battery state of charge.
    pub fn soc(&self) -> Ratio {
        self.battery.soc()
    }

    /// Ultracapacitor state of energy.
    pub fn soe(&self) -> Ratio {
        self.cap.soe()
    }

    /// Sets initial conditions.
    pub fn set_state(&mut self, soc: Ratio, soe: Ratio) {
        self.battery.set_soc(soc);
        self.cap.set_soe(soe);
    }

    /// Executes one control period: `converted_bus` is the commanded
    /// bus-side power of the *converted* storage (positive = it serves
    /// the bus); the direct storage covers `load − converted_bus`.
    /// Infeasible commands clamp with the shortfall reported.
    pub fn step(
        &mut self,
        load: Watts,
        converted_bus: Watts,
        temperature: Kelvin,
        dt: Seconds,
    ) -> HeesStep {
        let direct_share = load - converted_bus;
        match self.side {
            ConvertedSide::Ultracap => {
                // Converted leg: the bank through its converter.
                let (cap_internal, cap_delivered, conv_loss) = self.cap_leg(converted_bus, dt);
                // Direct leg: the battery takes the remainder, unconverted.
                let (bat_internal, bat_heat, c_rate, bat_delivered) =
                    self.battery_leg(direct_share, temperature, dt);
                let delivered = cap_delivered + bat_delivered;
                HeesStep {
                    delivered,
                    shortfall: Watts::new((load.value() - delivered.value()).max(0.0)),
                    battery_internal: bat_internal,
                    cap_internal,
                    battery_heat: bat_heat,
                    battery_c_rate: c_rate,
                    converter_loss: conv_loss,
                }
            }
            ConvertedSide::Battery => {
                // Converted leg: the battery through its converter.
                let v = self.battery.open_circuit_voltage();
                let storage_request = if converted_bus.value() >= 0.0 {
                    self.converter.input_for_output(converted_bus, v)
                } else {
                    self.converter.output_for_input(converted_bus, v)
                };
                let (bat_internal, bat_heat, c_rate, bat_delivered, conv_loss) =
                    match storage_request {
                        Ok(p) => {
                            let (i, h, c, d) = self.battery_leg(p, temperature, dt);
                            (
                                i,
                                h,
                                c,
                                if d == p { converted_bus } else { d },
                                (d - converted_bus).abs(),
                            )
                        }
                        Err(_) => (Watts::ZERO, Watts::ZERO, 0.0, Watts::ZERO, Watts::ZERO),
                    };
                // Direct leg: the bank absorbs the rest at bus voltage.
                let (cap_internal, cap_delivered, _) = self.direct_cap_leg(direct_share, dt);
                let delivered = bat_delivered + cap_delivered;
                HeesStep {
                    delivered,
                    shortfall: Watts::new((load.value() - delivered.value()).max(0.0)),
                    battery_internal: bat_internal,
                    cap_internal,
                    battery_heat: bat_heat,
                    battery_c_rate: c_rate,
                    converter_loss: conv_loss,
                }
            }
        }
    }

    /// Converted ultracapacitor leg: returns (internal, bus delivered,
    /// converter loss).
    fn cap_leg(&mut self, bus: Watts, dt: Seconds) -> (Watts, Watts, Watts) {
        let v = self.cap.voltage();
        let storage_request = if bus.value() >= 0.0 {
            self.converter.input_for_output(bus, v)
        } else {
            self.converter.output_for_input(bus, v)
        };
        match storage_request {
            Ok(p) => {
                let clamped = Watts::new(p.value().clamp(
                    -self.cap.max_charge_power().value(),
                    self.cap.max_discharge_power().value(),
                ));
                match self.cap.draw_power(clamped) {
                    Ok(d) => {
                        self.cap.integrate(d, dt);
                        let bus_got = if clamped == p {
                            bus
                        } else {
                            self.converter
                                .output_for_input(clamped, v)
                                .unwrap_or(Watts::ZERO)
                        };
                        (
                            (d.internal_power),
                            bus_got,
                            (d.terminal_power - bus_got).abs(),
                        )
                    }
                    Err(_) => (Watts::ZERO, Watts::ZERO, Watts::ZERO),
                }
            }
            Err(_) => (Watts::ZERO, Watts::ZERO, Watts::ZERO),
        }
    }

    /// Direct ultracapacitor leg (bus-voltage bank, no converter).
    fn direct_cap_leg(&mut self, share: Watts, dt: Seconds) -> (Watts, Watts, Watts) {
        let clamped = Watts::new(share.value().clamp(
            -self.cap.max_charge_power().value(),
            self.cap.max_discharge_power().value(),
        ));
        match self.cap.draw_power(clamped) {
            Ok(d) => {
                self.cap.integrate(d, dt);
                (d.internal_power, clamped, Watts::ZERO)
            }
            Err(_) => (Watts::ZERO, Watts::ZERO, Watts::ZERO),
        }
    }

    /// Battery leg (direct or post-conversion): returns
    /// (internal, heat, c-rate, terminal delivered).
    fn battery_leg(
        &mut self,
        power: Watts,
        temperature: Kelvin,
        dt: Seconds,
    ) -> (Watts, Watts, f64, Watts) {
        let draw = self.battery.draw_power(power, temperature).or_else(|_| {
            let peak = self.battery.max_discharge_power(temperature) * 0.999;
            self.battery.draw_power(peak.min(power), temperature)
        });
        match draw {
            Ok(d) => {
                self.battery.integrate(d, dt);
                (d.internal_power, d.heat, d.c_rate, d.terminal_power)
            }
            Err(_) => (Watts::ZERO, Watts::ZERO, 0.0, Watts::ZERO),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn room() -> Kelvin {
        Kelvin::from_celsius(25.0)
    }

    #[test]
    fn cap_converted_serves_split_load() {
        let mut h = SemiActiveHees::cap_converted(Farads::new(25_000.0)).unwrap();
        h.set_state(Ratio::ONE, Ratio::new(0.8));
        let step = h.step(
            Watts::new(30_000.0),
            Watts::new(10_000.0),
            room(),
            Seconds::new(1.0),
        );
        assert!(step.battery_internal.value() > 19_000.0);
        assert!(step.cap_internal.value() > 10_000.0); // + converter loss
        assert!(step.converter_loss.value() > 0.0);
        assert!(step.shortfall.value() < 1.0);
    }

    #[test]
    fn battery_converted_pays_conversion_on_all_battery_power() {
        let mut semi = SemiActiveHees::battery_converted(Farads::new(25_000.0)).unwrap();
        semi.set_state(Ratio::ONE, Ratio::new(0.8));
        let step = semi.step(
            Watts::new(30_000.0),
            Watts::new(30_000.0), // battery carries everything, converted
            room(),
            Seconds::new(1.0),
        );
        assert!(step.converter_loss.value() > 0.0);
        assert!(step.battery_internal.value() > 30_000.0);
    }

    #[test]
    fn zero_command_leaves_converted_storage_idle() {
        let mut h = SemiActiveHees::cap_converted(Farads::new(25_000.0)).unwrap();
        h.set_state(Ratio::ONE, Ratio::new(0.8));
        let soe0 = h.soe();
        let step = h.step(Watts::new(20_000.0), Watts::ZERO, room(), Seconds::new(1.0));
        // Only the self-discharge leak moves the bank (< 1e-5 per second).
        assert!((h.soe().value() - soe0.value()).abs() < 1e-5);
        assert_eq!(step.cap_internal, Watts::ZERO);
        assert!(step.battery_internal.value() > 20_000.0);
    }

    #[test]
    fn regen_can_be_routed_into_the_converted_bank() {
        let mut h = SemiActiveHees::cap_converted(Farads::new(25_000.0)).unwrap();
        h.set_state(Ratio::new(0.8), Ratio::new(0.5));
        let step = h.step(
            Watts::new(-20_000.0),
            Watts::new(-20_000.0),
            room(),
            Seconds::new(5.0),
        );
        assert!(h.soe() > Ratio::new(0.5));
        assert!(step.cap_internal.value() < 0.0);
    }

    #[test]
    fn depleted_converted_bank_degrades_to_battery() {
        let mut h = SemiActiveHees::cap_converted(Farads::new(25_000.0)).unwrap();
        h.set_state(Ratio::ONE, Ratio::new(0.003));
        let step = h.step(
            Watts::new(30_000.0),
            Watts::new(15_000.0),
            room(),
            Seconds::new(1.0),
        );
        // The cap leg collapses; the direct battery still serves its share.
        assert!(step.shortfall.value() > 10_000.0);
        assert!(step.battery_internal.value() > 14_000.0);
    }

    #[test]
    fn sides_report_correctly() {
        assert_eq!(
            SemiActiveHees::cap_converted(Farads::new(5_000.0))
                .unwrap()
                .side(),
            ConvertedSide::Ultracap
        );
        assert_eq!(
            SemiActiveHees::battery_converted(Farads::new(5_000.0))
                .unwrap()
                .side(),
            ConvertedSide::Battery
        );
    }
}
