//! Hybrid Electrical Energy Storage (HEES) architectures for the OTEM
//! simulator — Section II-C of the paper.
//!
//! Three ways of wiring a battery pack and an ultracapacitor bank to the
//! EV bus, matching the paper's comparison set:
//!
//! * [`ParallelHees`] — the two storages hard-wired in parallel
//!   (Shin et al. DATE'11 \[15\]): the load split follows from circuit
//!   laws (Eq. 10–13), nobody controls it.
//! * [`DualHees`] — two switches select battery, ultracapacitor, or both
//!   (Shin et al. DATE'14 \[16\]): a policy picks the mode, e.g. on a
//!   battery-temperature threshold.
//! * [`HybridHees`] — each storage sits behind its own DC/DC converter
//!   on a common DC bus (\[3\]): fully independent power commands, at the
//!   price of conversion losses that grow as the ultracapacitor's
//!   voltage sags. This is the architecture OTEM controls.
//!
//! All architectures expose a step interface that *resolves* a power
//! request into per-storage operating points, applies them, and returns
//! a [`HeesStep`] record with the energy bookkeeping the controllers and
//! the aging model need.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod dual;
mod error;
mod hybrid;
mod parallel;
mod semi_active;
mod step;

pub use dual::{DualHees, DualMode};
pub use error::HeesError;
pub use hybrid::{HeesSnapshot, HeesStepJacobian, HybridCommand, HybridHees};
pub use parallel::ParallelHees;
pub use semi_active::{ConvertedSide, SemiActiveHees};
pub use step::HeesStep;

use otem_ultracap::UltracapParams;
use otem_units::{Farads, Volts};

/// Maps the paper's cell-referenced capacitance label (5,000–25,000 F at
/// a 16 V rated bank) onto a pack-voltage-domain equivalent with the
/// *same stored energy*, for the converter-less Parallel and Dual
/// architectures whose bank must live in the battery's voltage domain.
///
/// `½·C_pack·V_pack² = ½·C_label·16²` ⇒ `C_pack = C_label·(16/V_pack)²`.
pub fn pack_domain_bank(label: Farads, pack_rated_voltage: Volts) -> UltracapParams {
    let reference = UltracapParams::paper_bank(label);
    let scale = reference.rated_voltage.value() / pack_rated_voltage.value();
    UltracapParams {
        capacitance: Farads::new(label.value() * scale * scale),
        rated_voltage: pack_rated_voltage,
        ..reference
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_domain_bank_preserves_energy() {
        let label = Farads::new(25_000.0);
        let bank = pack_domain_bank(label, Volts::new(400.0));
        let reference = UltracapParams::paper_bank(label);
        let e1 = bank.energy_capacity().value();
        let e2 = reference.energy_capacity().value();
        assert!((e1 - e2).abs() / e2 < 1e-12, "{e1} vs {e2}");
        assert_eq!(bank.rated_voltage, Volts::new(400.0));
    }
}
