//! The hybrid (DC-bus) architecture — each storage behind its own DC/DC
//! converter (\[3\]); the architecture OTEM controls.

use crate::error::HeesError;
use crate::step::HeesStep;
use otem_battery::{BatteryPack, CellParams, PackConfig, PackSnapshot, PowerDraw};
use otem_converter::DcDcConverter;
use otem_ultracap::{CapDraw, UltracapBank, UltracapParams};
use otem_units::{Farads, Kelvin, Ratio, Seconds, Volts, Watts};
use serde::{Deserialize, Serialize};

/// Exact partial derivatives of one [`HybridHees::step`]: one row per
/// step output (plus the two post-step storage states), columns over the
/// step inputs `[P_bus,bat, P_bus,cap, T, SoC, SoE]` — see the `IN_*`
/// associated constants for the column order.
///
/// Produced by [`HybridHees::step_with_jacobian`]. Every row
/// differentiates exactly the branch the forward step executed
/// (converter direction, envelope clamps, peak-power fallback,
/// saturation of either coulomb counter), so the adjoint backward sweep
/// sees the same piecewise function finite differences would.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HeesStepJacobian {
    /// Bus power actually delivered.
    pub delivered: [f64; 5],
    /// Battery chemical power (`V_oc·I`).
    pub battery_internal: [f64; 5],
    /// Ultracapacitor store power (`V_cap·I_cap`).
    pub cap_internal: [f64; 5],
    /// Battery heat generation.
    pub battery_heat: [f64; 5],
    /// Battery C-rate magnitude.
    pub battery_c_rate: [f64; 5],
    /// Post-step battery state of charge.
    pub soc_next: [f64; 5],
    /// Post-step ultracapacitor state of energy.
    pub soe_next: [f64; 5],
}

impl HeesStepJacobian {
    /// Column index of the battery bus-power command.
    pub const IN_BATTERY_BUS: usize = 0;
    /// Column index of the ultracapacitor bus-power command.
    pub const IN_CAP_BUS: usize = 1;
    /// Column index of the battery temperature input.
    pub const IN_TEMPERATURE: usize = 2;
    /// Column index of the pre-step state of charge.
    pub const IN_SOC: usize = 3;
    /// Column index of the pre-step state of energy.
    pub const IN_SOE: usize = 4;
}

/// Independent bus-side power commands for the two storages.
///
/// Positive = the storage delivers power to the bus; negative = power is
/// taken off the bus into the storage (pre-charging the ultracapacitor,
/// or routing regeneration).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct HybridCommand {
    /// Battery bus-side power.
    pub battery_bus: Watts,
    /// Ultracapacitor bus-side power.
    pub cap_bus: Watts,
}

impl HybridCommand {
    /// Net power the command puts on the bus.
    pub fn net(&self) -> Watts {
        self.battery_bus + self.cap_bus
    }
}

/// Battery and ultracapacitor on a common DC bus through converters.
///
/// The controller (OTEM's MPC, or any policy) commands bus-side power for
/// each storage independently. Conversion losses depend on each
/// storage's voltage — the ultracapacitor's converter efficiency sags
/// with √SoE, which is exactly the coupling OTEM's cost function prices.
///
/// # Examples
///
/// ```
/// use otem_hees::{HybridCommand, HybridHees};
/// use otem_units::{Farads, Kelvin, Ratio, Seconds, Watts};
///
/// # fn main() -> Result<(), otem_hees::HeesError> {
/// let mut hees = HybridHees::ev_default(Farads::new(25_000.0))?;
/// hees.set_state(Ratio::ONE, Ratio::from_percent(60.0));
/// // Serve 20 kW from the battery while pre-charging the cap with 5 kW:
/// let step = hees.step(
///     HybridCommand {
///         battery_bus: Watts::new(25_000.0),
///         cap_bus: Watts::new(-5_000.0),
///     },
///     Kelvin::from_celsius(25.0),
///     Seconds::new(1.0),
/// );
/// assert!(step.converter_loss.value() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HybridHees {
    battery: BatteryPack,
    cap: UltracapBank,
    battery_converter: DcDcConverter,
    cap_converter: DcDcConverter,
}

/// Point-in-time copy of a [`HybridHees`]'s mutable state.
///
/// [`HybridHees::step`] mutates only the battery's coulomb counter and
/// the ultracapacitor's state of energy; converters and all parameters
/// are immutable. This `Copy` struct therefore captures the whole plant
/// state, letting speculative rollouts run
/// [`HybridHees::snapshot`] → mutate → [`HybridHees::restore`] on one
/// long-lived plant instead of deep-cloning the plant per evaluation —
/// the MPC's gradient loop does exactly this thousands of times per
/// solve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeesSnapshot {
    battery: PackSnapshot,
    soe: Ratio,
}

impl HybridHees {
    /// Builds the paper's EV configuration: Tesla-S-like pack and a
    /// native-voltage (16 V rated) bank of the given capacitance behind
    /// their converters.
    ///
    /// # Errors
    ///
    /// Returns [`HeesError`] when any component's parameters fail
    /// validation.
    pub fn ev_default(capacitance: Farads) -> Result<Self, HeesError> {
        let battery = BatteryPack::new(CellParams::ncr18650a(), PackConfig::tesla_s_like())?;
        Self::new(
            battery,
            UltracapParams::paper_bank(capacitance),
            DcDcConverter::battery_side(),
            DcDcConverter::ultracap_side(),
        )
    }

    /// Builds from explicit components.
    ///
    /// # Errors
    ///
    /// Returns [`HeesError`] when the bank or converter parameters fail
    /// validation.
    pub fn new(
        battery: BatteryPack,
        cap_params: UltracapParams,
        battery_converter: DcDcConverter,
        cap_converter: DcDcConverter,
    ) -> Result<Self, HeesError> {
        battery_converter.validate()?;
        cap_converter.validate()?;
        Ok(Self {
            battery,
            cap: UltracapBank::new(cap_params)?,
            battery_converter,
            cap_converter,
        })
    }

    /// The battery pack.
    pub fn battery(&self) -> &BatteryPack {
        &self.battery
    }

    /// The ultracapacitor bank.
    pub fn cap(&self) -> &UltracapBank {
        &self.cap
    }

    /// The battery-side converter.
    pub fn battery_converter(&self) -> &DcDcConverter {
        &self.battery_converter
    }

    /// The ultracapacitor-side converter.
    pub fn cap_converter(&self) -> &DcDcConverter {
        &self.cap_converter
    }

    /// Battery state of charge.
    pub fn soc(&self) -> Ratio {
        self.battery.soc()
    }

    /// Ultracapacitor state of energy.
    pub fn soe(&self) -> Ratio {
        self.cap.soe()
    }

    /// Sets initial conditions.
    pub fn set_state(&mut self, soc: Ratio, soe: Ratio) {
        self.battery.set_soc(soc);
        self.cap.set_soe(soe);
    }

    /// Captures the plant's mutable state for a later
    /// [`HybridHees::restore`]. Never allocates.
    pub fn snapshot(&self) -> HeesSnapshot {
        HeesSnapshot {
            battery: self.battery.snapshot(),
            soe: self.cap.soe(),
        }
    }

    /// Rewinds the plant to a previously captured [`HeesSnapshot`].
    /// Never allocates.
    pub fn restore(&mut self, snapshot: HeesSnapshot) {
        self.battery.restore(snapshot.battery);
        self.cap.set_soe(snapshot.soe);
    }

    /// Largest bus-side power the battery path can deliver right now.
    pub fn battery_bus_limit(&self, temperature: Kelvin) -> Watts {
        let storage_peak = self.battery.max_discharge_power(temperature);
        // Conversion shrinks what arrives on the bus; approximate with
        // the efficiency at the peak.
        let v = self.battery.open_circuit_voltage();
        match self.battery_converter.efficiency(storage_peak, v) {
            Ok(eta) => storage_peak * eta,
            Err(_) => Watts::ZERO,
        }
    }

    /// Largest bus-side power the ultracapacitor path can deliver right
    /// now.
    pub fn cap_bus_limit(&self) -> Watts {
        let storage_peak = self.cap.max_discharge_power();
        match self
            .cap_converter
            .efficiency(storage_peak, self.cap.voltage())
        {
            Ok(eta) => storage_peak * eta,
            Err(_) => Watts::ZERO,
        }
    }

    /// Executes one control period. Each leg clamps independently to its
    /// feasibility envelope; the clamped remainder shows up as
    /// [`HeesStep::shortfall`] relative to the commanded net.
    pub fn step(&mut self, command: HybridCommand, temperature: Kelvin, dt: Seconds) -> HeesStep {
        self.step_impl(command, temperature, dt, None)
    }

    /// [`HybridHees::step`] plus the exact partial derivatives of every
    /// output in the step inputs.
    ///
    /// The forward dynamics are the *same code path* as
    /// [`HybridHees::step`] — results are bit-identical — with pure
    /// derivative reads layered onto whichever branches execute. One
    /// call per horizon step is what lets the MPC adjoint replace
    /// `O(horizon)` finite-difference rollouts per gradient.
    pub fn step_with_jacobian(
        &mut self,
        command: HybridCommand,
        temperature: Kelvin,
        dt: Seconds,
    ) -> (HeesStep, HeesStepJacobian) {
        let mut jac = HeesStepJacobian::default();
        let step = self.step_impl(command, temperature, dt, Some(&mut jac));
        (step, jac)
    }

    /// Shared single-step implementation. When `jac` is provided, the
    /// executed branch of each leg additionally records its partial
    /// derivatives; all forward arithmetic is identical either way.
    fn step_impl(
        &mut self,
        command: HybridCommand,
        temperature: Kelvin,
        dt: Seconds,
        mut jac: Option<&mut HeesStepJacobian>,
    ) -> HeesStep {
        if let Some(j) = jac.as_deref_mut() {
            // A leg that errors out leaves its storage untouched: the
            // state rows default to the identity and are overwritten by
            // whichever legs actually integrate.
            *j = HeesStepJacobian::default();
            j.soc_next[HeesStepJacobian::IN_SOC] = 1.0;
            j.soe_next[HeesStepJacobian::IN_SOE] = 1.0;
        }
        let mut converter_loss = Watts::ZERO;
        let mut delivered = Watts::ZERO;

        // --- Battery leg -------------------------------------------------
        let (bat_internal, bat_heat, bat_c_rate) = {
            let bus = command.battery_bus;
            let v = self.battery.open_circuit_voltage();
            let storage_request = if bus.value() >= 0.0 {
                self.battery_converter.input_for_output(bus, v)
            } else {
                self.battery_converter.output_for_input(bus, v)
            };
            match storage_request {
                Ok(storage_power) => {
                    let draw = self
                        .battery
                        .draw_power(storage_power, temperature)
                        .or_else(|_| {
                            let peak = self.battery.max_discharge_power(temperature) * 0.999;
                            self.battery
                                .draw_power(peak.min(storage_power), temperature)
                        });
                    match draw {
                        Ok(d) => {
                            // Bus power actually achieved on this leg (a
                            // pure function of the resolved draw — safe
                            // to price before integrating).
                            let bus_got = if d.terminal_power == storage_power {
                                bus
                            } else if bus.value() >= 0.0 {
                                // Re-map the clamped storage power to bus.
                                self.battery_converter
                                    .output_for_input(d.terminal_power, v)
                                    .unwrap_or(Watts::ZERO)
                            } else {
                                bus
                            };
                            if let Some(j) = jac.as_deref_mut() {
                                self.battery_leg_jacobian(
                                    j,
                                    bus,
                                    v,
                                    storage_power,
                                    &d,
                                    temperature,
                                    dt,
                                );
                            }
                            self.battery.integrate(d, dt);
                            if let Some(j) = jac.as_deref_mut() {
                                // A saturated coulomb counter is flat in
                                // every input.
                                let post = self.battery.soc().value();
                                let i = d.current.value();
                                if (post == 0.0 && i > 0.0) || (post == 1.0 && i < 0.0) {
                                    j.soc_next = [0.0; 5];
                                }
                            }
                            delivered += bus_got;
                            converter_loss += (d.terminal_power - bus_got).abs();
                            (d.internal_power, d.heat, d.c_rate)
                        }
                        Err(_) => (Watts::ZERO, Watts::ZERO, 0.0),
                    }
                }
                Err(_) => (Watts::ZERO, Watts::ZERO, 0.0),
            }
        };

        // --- Ultracapacitor leg ------------------------------------------
        let cap_internal = {
            let bus = command.cap_bus;
            let v = self.cap.voltage();
            let storage_request = if bus.value() >= 0.0 {
                self.cap_converter.input_for_output(bus, v)
            } else {
                self.cap_converter.output_for_input(bus, v)
            };
            match storage_request {
                Ok(storage_power) => {
                    // Clamp into the bank's envelope.
                    let clamped = Watts::new(storage_power.value().clamp(
                        -self.cap.max_charge_power().value(),
                        self.cap.max_discharge_power().value(),
                    ));
                    match self.cap.draw_power(clamped) {
                        Ok(d) => {
                            let bus_got = if clamped == storage_power {
                                bus
                            } else if bus.value() >= 0.0 {
                                self.cap_converter
                                    .output_for_input(clamped, v)
                                    .unwrap_or(Watts::ZERO)
                            } else {
                                // Charge leg clamped: less is taken off the
                                // bus than commanded.
                                self.cap_converter
                                    .input_for_output(clamped, v)
                                    .unwrap_or(Watts::ZERO)
                            };
                            if let Some(j) = jac.as_deref_mut() {
                                self.cap_leg_jacobian(
                                    j,
                                    bus,
                                    v,
                                    storage_power,
                                    clamped,
                                    bus_got,
                                    &d,
                                    dt,
                                );
                            }
                            self.cap.integrate(d, dt);
                            if let Some(j) = jac {
                                let post = self.cap.soe().value();
                                if post == 0.0 || post == 1.0 {
                                    j.soe_next = [0.0; 5];
                                }
                            }
                            delivered += bus_got;
                            converter_loss += (d.terminal_power - bus_got).abs();
                            d.internal_power
                        }
                        Err(_) => Watts::ZERO,
                    }
                }
                Err(_) => Watts::ZERO,
            }
        };

        let net = command.net();
        HeesStep {
            delivered,
            shortfall: Watts::new((net.value() - delivered.value()).max(0.0)),
            battery_internal: bat_internal,
            cap_internal,
            battery_heat: bat_heat,
            battery_c_rate: bat_c_rate,
            converter_loss,
        }
    }

    /// Records the battery leg's partial derivatives for the branch the
    /// forward pass executed. Must run *before* `integrate` (the draw
    /// partials differentiate at the pre-step state of charge).
    #[allow(clippy::too_many_arguments)]
    fn battery_leg_jacobian(
        &self,
        j: &mut HeesStepJacobian,
        bus: Watts,
        v: Volts,
        storage_power: Watts,
        d: &PowerDraw,
        temperature: Kelvin,
        dt: Seconds,
    ) {
        const PB: usize = HeesStepJacobian::IN_BATTERY_BUS;
        const T: usize = HeesStepJacobian::IN_TEMPERATURE;
        const SOC: usize = HeesStepJacobian::IN_SOC;
        let Some(dp) = self.battery.draw_partials(d.terminal_power, temperature) else {
            return;
        };
        let dv_dsoc = self.battery.open_circuit_voltage_slope();
        let nominal = d.terminal_power == storage_power;
        // Sensitivities of the storage power actually drawn, over
        // [∂/∂P_bus, ∂/∂SoC, ∂/∂T].
        let (p_pb, p_soc, p_t) = if nominal {
            if bus.value() == 0.0 {
                // Exactly zero transfer sits on the converter's |P| kink,
                // where a central finite difference measures the *mean*
                // of the two one-sided slopes. The adjoint adopts that
                // subgradient convention so both MPC gradient modes walk
                // the same solve path (the golden traces were blessed
                // with central differences). The voltage chain vanishes
                // in the limit from either side.
                let (g_dis, g_chg) = self.battery_converter.zero_transfer_gain_limits(v);
                (0.5 * (g_dis + g_chg), 0.0, 0.0)
            } else {
                let (g_bus, g_v) = if bus.value() >= 0.0 {
                    match self
                        .battery_converter
                        .input_for_output_partials(storage_power, v)
                    {
                        Some(g) => g,
                        None => return,
                    }
                } else {
                    self.battery_converter.output_for_input_partials(bus, v)
                };
                // The converter voltage is the OCV, a function of SoC alone.
                (g_bus, g_v * dv_dsoc, 0.0)
            }
        } else {
            // Fallback drew 99.9 % of the SoC/temperature-dependent peak;
            // the bus command no longer reaches the pack.
            let (dpk_soc, dpk_t) = self.battery.max_discharge_power_partials(temperature);
            (0.0, 0.999 * dpk_soc, 0.999 * dpk_t)
        };
        let chain = |row: [f64; 3]| -> [f64; 3] {
            [
                row[0] * p_pb,
                row[1] + row[0] * p_soc,
                row[2] + row[0] * p_t,
            ]
        };
        let internal = chain(dp.internal_power);
        let heat = chain(dp.heat);
        let c_rate = chain(dp.c_rate);
        let current = chain(dp.current);
        j.battery_internal[PB] = internal[0];
        j.battery_internal[SOC] = internal[1];
        j.battery_internal[T] = internal[2];
        j.battery_heat[PB] = heat[0];
        j.battery_heat[SOC] = heat[1];
        j.battery_heat[T] = heat[2];
        j.battery_c_rate[PB] = c_rate[0];
        j.battery_c_rate[SOC] = c_rate[1];
        j.battery_c_rate[T] = c_rate[2];
        if nominal && bus.value() == 0.0 {
            // The C-rate magnitude has its own kink at zero current: the
            // one-sided row slopes ±∂I/∂P cancel in the mean (the pack
            // partials report zero there), but each pairs with a
            // *different* converter gain, leaving the central-difference
            // mean of the products ½(g₊·s − g₋·s) = ½(g₊ − g₋)·s.
            let (g_dis, g_chg) = self.battery_converter.zero_transfer_gain_limits(v);
            let dcr_di = 1.0
                / (self.battery.config().parallel as f64
                    * self.battery.cell().effective_capacity().value());
            j.battery_c_rate[PB] = 0.5 * (g_dis - g_chg) * dp.current[0] * dcr_di;
        }
        // SoC⁺ = SoC − I_pack·dt/(parallel·Q_cell); saturation is zeroed
        // by the caller after integrating.
        let scale = dt.value() * self.battery.soc_per_amp_second();
        j.soc_next[PB] = -scale * current[0];
        j.soc_next[SOC] = 1.0 - scale * current[1];
        j.soc_next[T] = -scale * current[2];
        if nominal || bus.value() < 0.0 {
            // The commanded bus power was met exactly.
            j.delivered[PB] += 1.0;
        } else {
            // Clamped discharge: delivered = forward-map of the peak draw.
            let (f_p, f_v) = self
                .battery_converter
                .output_for_input_partials(d.terminal_power, v);
            j.delivered[SOC] += f_p * p_soc + f_v * dv_dsoc;
            j.delivered[T] += f_p * p_t;
        }
    }

    /// Records the ultracapacitor leg's partial derivatives for the
    /// branch the forward pass executed. Must run *before* `integrate`.
    #[allow(clippy::too_many_arguments)]
    fn cap_leg_jacobian(
        &self,
        j: &mut HeesStepJacobian,
        bus: Watts,
        v: Volts,
        storage_power: Watts,
        clamped: Watts,
        bus_got: Watts,
        d: &CapDraw,
        dt: Seconds,
    ) {
        const PC: usize = HeesStepJacobian::IN_CAP_BUS;
        const SOE: usize = HeesStepJacobian::IN_SOE;
        let Some(dp) = self.cap.draw_partials(d.terminal_power) else {
            return;
        };
        let dv_dsoe = self.cap.voltage_slope();
        let nominal = clamped == storage_power;
        // Sensitivities of the clamped storage power, over
        // [∂/∂P_bus, ∂/∂SoE].
        let (p_pc, p_soe) = if nominal {
            if bus.value() == 0.0 {
                // Zero transfer is the converter's |P| kink; use the
                // central-difference mean of the one-sided slopes (see
                // the battery leg) so the adjoint agrees with the FD
                // gradients the golden traces were blessed with. The
                // bank's own partials are smooth across zero current.
                let (g_dis, g_chg) = self.cap_converter.zero_transfer_gain_limits(v);
                (0.5 * (g_dis + g_chg), 0.0)
            } else {
                let (g_bus, g_v) = if bus.value() >= 0.0 {
                    match self
                        .cap_converter
                        .input_for_output_partials(storage_power, v)
                    {
                        Some(g) => g,
                        None => return,
                    }
                } else {
                    self.cap_converter.output_for_input_partials(bus, v)
                };
                (g_bus, g_v * dv_dsoe)
            }
        } else if storage_power.value() > 0.0 {
            // Discharge pinned to the envelope: follows the limit's own
            // SoE slope, flat in the command.
            (0.0, self.cap.discharge_limit_slope())
        } else {
            // Charge pinned to −max_charge.
            (0.0, -self.cap.charge_limit_slope())
        };
        let internal = [
            dp.internal_power[0] * p_pc,
            dp.internal_power[1] + dp.internal_power[0] * p_soe,
        ];
        j.cap_internal[PC] = internal[0];
        j.cap_internal[SOE] = internal[1];
        // SoE⁺ = (SoE − P_int·dt/E_cap)·leak; saturation is zeroed by the
        // caller after integrating.
        let e_cap = self.cap.params().energy_capacity().value();
        let leak = (-dt.value() / self.cap.params().leakage_time_constant).exp();
        j.soe_next[PC] = -leak * dt.value() / e_cap * internal[0];
        j.soe_next[SOE] = leak * (1.0 - dt.value() / e_cap * internal[1]);
        if nominal {
            j.delivered[PC] += 1.0;
        } else if bus.value() >= 0.0 {
            // Clamped discharge: delivered = forward-map of the envelope
            // limit.
            let (f_p, f_v) = self.cap_converter.output_for_input_partials(clamped, v);
            j.delivered[SOE] += f_p * p_soe + f_v * dv_dsoe;
        } else if let Some((g2_p, g2_v)) = self.cap_converter.input_for_output_partials(bus_got, v)
        {
            // Clamped charge: delivered = inverse-map of the envelope
            // limit (how much bus power the clamped charge absorbs).
            j.delivered[SOE] += g2_p * p_soe + g2_v * dv_dsoe;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn room() -> Kelvin {
        Kelvin::from_celsius(25.0)
    }

    fn hees() -> HybridHees {
        HybridHees::ev_default(Farads::new(25_000.0)).expect("valid")
    }

    #[test]
    fn split_command_draws_both_storages() {
        let mut h = hees();
        h.set_state(Ratio::ONE, Ratio::new(0.8));
        let step = h.step(
            HybridCommand {
                battery_bus: Watts::new(20_000.0),
                cap_bus: Watts::new(10_000.0),
            },
            room(),
            Seconds::new(1.0),
        );
        assert!(step.battery_internal.value() > 20_000.0); // + conversion + joule
        assert!(step.cap_internal.value() > 10_000.0);
        assert!(step.converter_loss.value() > 0.0);
        assert!((step.delivered.value() - 30_000.0).abs() < 1.0);
        assert_eq!(step.shortfall, Watts::ZERO);
    }

    #[test]
    fn precharge_moves_energy_battery_to_cap() {
        let mut h = hees();
        h.set_state(Ratio::ONE, Ratio::new(0.4));
        let soe0 = h.soe();
        let soc0 = h.soc();
        let step = h.step(
            HybridCommand {
                battery_bus: Watts::new(8_000.0),
                cap_bus: Watts::new(-8_000.0),
            },
            room(),
            Seconds::new(10.0),
        );
        assert!(h.soe() > soe0, "cap charged");
        assert!(h.soc() < soc0, "battery paid for it");
        assert!(step.cap_internal.value() < 0.0);
        // Net bus power ≈ 0 (all internal transfer).
        assert!(step.delivered.value().abs() < 100.0);
    }

    #[test]
    fn conversion_loss_grows_as_cap_sags() {
        let mut high = hees();
        high.set_state(Ratio::ONE, Ratio::new(0.95));
        let mut low = hees();
        low.set_state(Ratio::ONE, Ratio::new(0.25));
        let cmd = HybridCommand {
            battery_bus: Watts::ZERO,
            cap_bus: Watts::new(12_000.0),
        };
        let a = high.step(cmd, room(), Seconds::new(1.0));
        let b = low.step(cmd, room(), Seconds::new(1.0));
        assert!(
            b.converter_loss > a.converter_loss,
            "sagged bank {:?} vs full {:?}",
            b.converter_loss,
            a.converter_loss
        );
    }

    #[test]
    fn regen_routed_to_cap_charges_it() {
        let mut h = hees();
        h.set_state(Ratio::new(0.8), Ratio::new(0.5));
        let step = h.step(
            HybridCommand {
                battery_bus: Watts::ZERO,
                cap_bus: Watts::new(-20_000.0),
            },
            room(),
            Seconds::new(5.0),
        );
        assert!(h.soe() > Ratio::new(0.5));
        assert!(step.cap_internal.value() < 0.0);
    }

    #[test]
    fn depleted_cap_cannot_deliver() {
        let mut h = hees();
        h.set_state(Ratio::ONE, Ratio::new(0.002));
        let step = h.step(
            HybridCommand {
                battery_bus: Watts::ZERO,
                cap_bus: Watts::new(15_000.0),
            },
            room(),
            Seconds::new(1.0),
        );
        assert!(step.shortfall.value() > 10_000.0);
    }

    #[test]
    fn battery_rests_when_cap_serves() {
        let mut h = hees();
        h.set_state(Ratio::ONE, Ratio::new(0.9));
        let step = h.step(
            HybridCommand {
                battery_bus: Watts::ZERO,
                cap_bus: Watts::new(15_000.0),
            },
            room(),
            Seconds::new(1.0),
        );
        assert_eq!(step.battery_heat, Watts::ZERO);
        assert_eq!(step.battery_c_rate, 0.0);
    }

    #[test]
    fn snapshot_restore_round_trips_exactly() {
        let mut h = hees();
        h.set_state(Ratio::new(0.85), Ratio::new(0.6));
        let saved = h.snapshot();
        let reference = h.clone();
        h.step(
            HybridCommand {
                battery_bus: Watts::new(30_000.0),
                cap_bus: Watts::new(-5_000.0),
            },
            room(),
            Seconds::new(30.0),
        );
        assert_ne!(h, reference);
        h.restore(saved);
        // Bit-exact rewind: a restored plant is indistinguishable from one
        // that never stepped, so speculative rollouts can reuse it freely.
        assert_eq!(h, reference);
    }

    #[test]
    fn step_with_jacobian_forward_results_are_bit_identical() {
        let commands = [
            (20_000.0, 10_000.0),
            (8_000.0, -8_000.0),
            (0.0, 15_000.0),
            (-12_000.0, 0.0),
            (30_000.0, 95_000.0), // cap leg clamps at the power limit
        ];
        for (pb, pc) in commands {
            let mut plain = hees();
            plain.set_state(Ratio::new(0.85), Ratio::new(0.6));
            let mut traced = plain.clone();
            let cmd = HybridCommand {
                battery_bus: Watts::new(pb),
                cap_bus: Watts::new(pc),
            };
            let a = plain.step(cmd, room(), Seconds::new(1.0));
            let (b, _) = traced.step_with_jacobian(cmd, room(), Seconds::new(1.0));
            assert_eq!(a, b, "forward results diverged for ({pb}, {pc})");
            assert_eq!(plain, traced, "post-step states diverged");
        }
    }

    /// Central differences of every jacobian row at one operating point.
    fn fd_check(mut make: impl FnMut() -> HybridHees, cmd: HybridCommand, label: &str) {
        let dt = Seconds::new(1.0);
        let outputs = |h: &mut HybridHees, cmd: HybridCommand, temp: Kelvin| -> [f64; 7] {
            let s = h.step(cmd, temp, dt);
            [
                s.delivered.value(),
                s.battery_internal.value(),
                s.cap_internal.value(),
                s.battery_heat.value(),
                s.battery_c_rate,
                h.soc().value(),
                h.soe().value(),
            ]
        };
        let mut base = make();
        let (_, jac) = base.step_with_jacobian(cmd, room(), dt);
        let rows: [(&str, [f64; 5]); 7] = [
            ("delivered", jac.delivered),
            ("battery_internal", jac.battery_internal),
            ("cap_internal", jac.cap_internal),
            ("battery_heat", jac.battery_heat),
            ("battery_c_rate", jac.battery_c_rate),
            ("soc_next", jac.soc_next),
            ("soe_next", jac.soe_next),
        ];
        // One column at a time: perturb the input, roll a fresh plant.
        let h_p = 1.0;
        let h_t = 1e-4;
        let h_s = 1e-7;
        for col in 0..5 {
            let mut plus = make();
            let mut minus = make();
            let (cmd_p, cmd_m, t_p, t_m) = match col {
                HeesStepJacobian::IN_BATTERY_BUS => (
                    HybridCommand {
                        battery_bus: cmd.battery_bus + Watts::new(h_p),
                        ..cmd
                    },
                    HybridCommand {
                        battery_bus: cmd.battery_bus - Watts::new(h_p),
                        ..cmd
                    },
                    room(),
                    room(),
                ),
                HeesStepJacobian::IN_CAP_BUS => (
                    HybridCommand {
                        cap_bus: cmd.cap_bus + Watts::new(h_p),
                        ..cmd
                    },
                    HybridCommand {
                        cap_bus: cmd.cap_bus - Watts::new(h_p),
                        ..cmd
                    },
                    room(),
                    room(),
                ),
                HeesStepJacobian::IN_TEMPERATURE => (
                    cmd,
                    cmd,
                    Kelvin::new(room().value() + h_t),
                    Kelvin::new(room().value() - h_t),
                ),
                HeesStepJacobian::IN_SOC => {
                    let soc = plus.soc().value();
                    plus.set_state(Ratio::new(soc + h_s), plus.soe());
                    minus.set_state(Ratio::new(soc - h_s), minus.soe());
                    (cmd, cmd, room(), room())
                }
                _ => {
                    let soe = plus.soe().value();
                    plus.set_state(plus.soc(), Ratio::new(soe + h_s));
                    minus.set_state(minus.soc(), Ratio::new(soe - h_s));
                    (cmd, cmd, room(), room())
                }
            };
            let step = match col {
                HeesStepJacobian::IN_BATTERY_BUS | HeesStepJacobian::IN_CAP_BUS => h_p,
                HeesStepJacobian::IN_TEMPERATURE => h_t,
                _ => h_s,
            };
            let up = outputs(&mut plus, cmd_p, t_p);
            let down = outputs(&mut minus, cmd_m, t_m);
            for (row_idx, (name, analytic)) in rows.iter().enumerate() {
                let fd = (up[row_idx] - down[row_idx]) / (2.0 * step);
                let scale = analytic[col].abs().max(fd.abs());
                // The converter fixed point converges to 1e-9 relative
                // tolerance; the FD baseline inherits that noise.
                let tol = 1e-3 * scale.max(1e-6);
                assert!(
                    (analytic[col] - fd).abs() <= tol,
                    "{label}: {name}[{col}] analytic {} vs FD {fd}",
                    analytic[col]
                );
            }
        }
    }

    #[test]
    fn jacobian_matches_finite_differences_nominal_split() {
        fd_check(
            || {
                let mut h = hees();
                h.set_state(Ratio::new(0.85), Ratio::new(0.6));
                h
            },
            HybridCommand {
                battery_bus: Watts::new(20_000.0),
                cap_bus: Watts::new(8_000.0),
            },
            "nominal discharge split",
        );
    }

    #[test]
    fn jacobian_matches_finite_differences_precharge() {
        fd_check(
            || {
                let mut h = hees();
                h.set_state(Ratio::new(0.7), Ratio::new(0.35));
                h
            },
            HybridCommand {
                battery_bus: Watts::new(10_000.0),
                cap_bus: Watts::new(-6_000.0),
            },
            "battery-to-cap precharge",
        );
    }

    #[test]
    fn jacobian_matches_finite_differences_cap_energy_clamped() {
        // SoE 0.02 → depletion guard ≈ 64 kW < the 90 kW rating: the
        // discharge clamp is energy-limited, so delivered power inherits
        // the E_cap slope in SoE.
        fd_check(
            || {
                let mut h = hees();
                h.set_state(Ratio::new(0.85), Ratio::new(0.02));
                h
            },
            HybridCommand {
                battery_bus: Watts::new(5_000.0),
                cap_bus: Watts::new(70_000.0),
            },
            "cap clamped at depletion guard",
        );
    }

    #[test]
    fn bus_limits_are_positive_and_ordered() {
        let h = hees();
        assert!(h.battery_bus_limit(room()).value() > 100_000.0);
        assert!(h.cap_bus_limit().value() > 10_000.0);
        let mut depleted = hees();
        depleted.set_state(Ratio::ONE, Ratio::new(0.01));
        assert!(depleted.cap_bus_limit() < h.cap_bus_limit());
    }
}
