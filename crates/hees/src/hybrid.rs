//! The hybrid (DC-bus) architecture — each storage behind its own DC/DC
//! converter (\[3\]); the architecture OTEM controls.

use crate::error::HeesError;
use crate::step::HeesStep;
use otem_battery::{BatteryPack, CellParams, PackConfig, PackSnapshot};
use otem_converter::DcDcConverter;
use otem_ultracap::{UltracapBank, UltracapParams};
use otem_units::{Farads, Kelvin, Ratio, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Independent bus-side power commands for the two storages.
///
/// Positive = the storage delivers power to the bus; negative = power is
/// taken off the bus into the storage (pre-charging the ultracapacitor,
/// or routing regeneration).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct HybridCommand {
    /// Battery bus-side power.
    pub battery_bus: Watts,
    /// Ultracapacitor bus-side power.
    pub cap_bus: Watts,
}

impl HybridCommand {
    /// Net power the command puts on the bus.
    pub fn net(&self) -> Watts {
        self.battery_bus + self.cap_bus
    }
}

/// Battery and ultracapacitor on a common DC bus through converters.
///
/// The controller (OTEM's MPC, or any policy) commands bus-side power for
/// each storage independently. Conversion losses depend on each
/// storage's voltage — the ultracapacitor's converter efficiency sags
/// with √SoE, which is exactly the coupling OTEM's cost function prices.
///
/// # Examples
///
/// ```
/// use otem_hees::{HybridCommand, HybridHees};
/// use otem_units::{Farads, Kelvin, Ratio, Seconds, Watts};
///
/// # fn main() -> Result<(), otem_hees::HeesError> {
/// let mut hees = HybridHees::ev_default(Farads::new(25_000.0))?;
/// hees.set_state(Ratio::ONE, Ratio::from_percent(60.0));
/// // Serve 20 kW from the battery while pre-charging the cap with 5 kW:
/// let step = hees.step(
///     HybridCommand {
///         battery_bus: Watts::new(25_000.0),
///         cap_bus: Watts::new(-5_000.0),
///     },
///     Kelvin::from_celsius(25.0),
///     Seconds::new(1.0),
/// );
/// assert!(step.converter_loss.value() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HybridHees {
    battery: BatteryPack,
    cap: UltracapBank,
    battery_converter: DcDcConverter,
    cap_converter: DcDcConverter,
}

/// Point-in-time copy of a [`HybridHees`]'s mutable state.
///
/// [`HybridHees::step`] mutates only the battery's coulomb counter and
/// the ultracapacitor's state of energy; converters and all parameters
/// are immutable. This `Copy` struct therefore captures the whole plant
/// state, letting speculative rollouts run
/// [`HybridHees::snapshot`] → mutate → [`HybridHees::restore`] on one
/// long-lived plant instead of deep-cloning the plant per evaluation —
/// the MPC's gradient loop does exactly this thousands of times per
/// solve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeesSnapshot {
    battery: PackSnapshot,
    soe: Ratio,
}

impl HybridHees {
    /// Builds the paper's EV configuration: Tesla-S-like pack and a
    /// native-voltage (16 V rated) bank of the given capacitance behind
    /// their converters.
    ///
    /// # Errors
    ///
    /// Returns [`HeesError`] when any component's parameters fail
    /// validation.
    pub fn ev_default(capacitance: Farads) -> Result<Self, HeesError> {
        let battery = BatteryPack::new(CellParams::ncr18650a(), PackConfig::tesla_s_like())?;
        Self::new(
            battery,
            UltracapParams::paper_bank(capacitance),
            DcDcConverter::battery_side(),
            DcDcConverter::ultracap_side(),
        )
    }

    /// Builds from explicit components.
    ///
    /// # Errors
    ///
    /// Returns [`HeesError`] when the bank or converter parameters fail
    /// validation.
    pub fn new(
        battery: BatteryPack,
        cap_params: UltracapParams,
        battery_converter: DcDcConverter,
        cap_converter: DcDcConverter,
    ) -> Result<Self, HeesError> {
        battery_converter.validate()?;
        cap_converter.validate()?;
        Ok(Self {
            battery,
            cap: UltracapBank::new(cap_params)?,
            battery_converter,
            cap_converter,
        })
    }

    /// The battery pack.
    pub fn battery(&self) -> &BatteryPack {
        &self.battery
    }

    /// The ultracapacitor bank.
    pub fn cap(&self) -> &UltracapBank {
        &self.cap
    }

    /// The battery-side converter.
    pub fn battery_converter(&self) -> &DcDcConverter {
        &self.battery_converter
    }

    /// The ultracapacitor-side converter.
    pub fn cap_converter(&self) -> &DcDcConverter {
        &self.cap_converter
    }

    /// Battery state of charge.
    pub fn soc(&self) -> Ratio {
        self.battery.soc()
    }

    /// Ultracapacitor state of energy.
    pub fn soe(&self) -> Ratio {
        self.cap.soe()
    }

    /// Sets initial conditions.
    pub fn set_state(&mut self, soc: Ratio, soe: Ratio) {
        self.battery.set_soc(soc);
        self.cap.set_soe(soe);
    }

    /// Captures the plant's mutable state for a later
    /// [`HybridHees::restore`]. Never allocates.
    pub fn snapshot(&self) -> HeesSnapshot {
        HeesSnapshot {
            battery: self.battery.snapshot(),
            soe: self.cap.soe(),
        }
    }

    /// Rewinds the plant to a previously captured [`HeesSnapshot`].
    /// Never allocates.
    pub fn restore(&mut self, snapshot: HeesSnapshot) {
        self.battery.restore(snapshot.battery);
        self.cap.set_soe(snapshot.soe);
    }

    /// Largest bus-side power the battery path can deliver right now.
    pub fn battery_bus_limit(&self, temperature: Kelvin) -> Watts {
        let storage_peak = self.battery.max_discharge_power(temperature);
        // Conversion shrinks what arrives on the bus; approximate with
        // the efficiency at the peak.
        let v = self.battery.open_circuit_voltage();
        match self.battery_converter.efficiency(storage_peak, v) {
            Ok(eta) => storage_peak * eta,
            Err(_) => Watts::ZERO,
        }
    }

    /// Largest bus-side power the ultracapacitor path can deliver right
    /// now.
    pub fn cap_bus_limit(&self) -> Watts {
        let storage_peak = self.cap.max_discharge_power();
        match self
            .cap_converter
            .efficiency(storage_peak, self.cap.voltage())
        {
            Ok(eta) => storage_peak * eta,
            Err(_) => Watts::ZERO,
        }
    }

    /// Executes one control period. Each leg clamps independently to its
    /// feasibility envelope; the clamped remainder shows up as
    /// [`HeesStep::shortfall`] relative to the commanded net.
    pub fn step(&mut self, command: HybridCommand, temperature: Kelvin, dt: Seconds) -> HeesStep {
        let mut converter_loss = Watts::ZERO;
        let mut delivered = Watts::ZERO;

        // --- Battery leg -------------------------------------------------
        let (bat_internal, bat_heat, bat_c_rate) = {
            let bus = command.battery_bus;
            let v = self.battery.open_circuit_voltage();
            let storage_request = if bus.value() >= 0.0 {
                self.battery_converter.input_for_output(bus, v)
            } else {
                self.battery_converter.output_for_input(bus, v)
            };
            match storage_request {
                Ok(storage_power) => {
                    let draw = self
                        .battery
                        .draw_power(storage_power, temperature)
                        .or_else(|_| {
                            let peak = self.battery.max_discharge_power(temperature) * 0.999;
                            self.battery
                                .draw_power(peak.min(storage_power), temperature)
                        });
                    match draw {
                        Ok(d) => {
                            self.battery.integrate(d, dt);
                            // Bus power actually achieved on this leg.
                            let bus_got = if d.terminal_power == storage_power {
                                bus
                            } else if bus.value() >= 0.0 {
                                // Re-map the clamped storage power to bus.
                                self.battery_converter
                                    .output_for_input(d.terminal_power, v)
                                    .unwrap_or(Watts::ZERO)
                            } else {
                                bus
                            };
                            delivered += bus_got;
                            converter_loss += (d.terminal_power - bus_got).abs();
                            (d.internal_power, d.heat, d.c_rate)
                        }
                        Err(_) => (Watts::ZERO, Watts::ZERO, 0.0),
                    }
                }
                Err(_) => (Watts::ZERO, Watts::ZERO, 0.0),
            }
        };

        // --- Ultracapacitor leg ------------------------------------------
        let cap_internal = {
            let bus = command.cap_bus;
            let v = self.cap.voltage();
            let storage_request = if bus.value() >= 0.0 {
                self.cap_converter.input_for_output(bus, v)
            } else {
                self.cap_converter.output_for_input(bus, v)
            };
            match storage_request {
                Ok(storage_power) => {
                    // Clamp into the bank's envelope.
                    let clamped = Watts::new(storage_power.value().clamp(
                        -self.cap.max_charge_power().value(),
                        self.cap.max_discharge_power().value(),
                    ));
                    match self.cap.draw_power(clamped) {
                        Ok(d) => {
                            self.cap.integrate(d, dt);
                            let bus_got = if clamped == storage_power {
                                bus
                            } else if bus.value() >= 0.0 {
                                self.cap_converter
                                    .output_for_input(clamped, v)
                                    .unwrap_or(Watts::ZERO)
                            } else {
                                // Charge leg clamped: less is taken off the
                                // bus than commanded.
                                self.cap_converter
                                    .input_for_output(clamped, v)
                                    .unwrap_or(Watts::ZERO)
                            };
                            delivered += bus_got;
                            converter_loss += (d.terminal_power - bus_got).abs();
                            d.internal_power
                        }
                        Err(_) => Watts::ZERO,
                    }
                }
                Err(_) => Watts::ZERO,
            }
        };

        let net = command.net();
        HeesStep {
            delivered,
            shortfall: Watts::new((net.value() - delivered.value()).max(0.0)),
            battery_internal: bat_internal,
            cap_internal,
            battery_heat: bat_heat,
            battery_c_rate: bat_c_rate,
            converter_loss,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn room() -> Kelvin {
        Kelvin::from_celsius(25.0)
    }

    fn hees() -> HybridHees {
        HybridHees::ev_default(Farads::new(25_000.0)).expect("valid")
    }

    #[test]
    fn split_command_draws_both_storages() {
        let mut h = hees();
        h.set_state(Ratio::ONE, Ratio::new(0.8));
        let step = h.step(
            HybridCommand {
                battery_bus: Watts::new(20_000.0),
                cap_bus: Watts::new(10_000.0),
            },
            room(),
            Seconds::new(1.0),
        );
        assert!(step.battery_internal.value() > 20_000.0); // + conversion + joule
        assert!(step.cap_internal.value() > 10_000.0);
        assert!(step.converter_loss.value() > 0.0);
        assert!((step.delivered.value() - 30_000.0).abs() < 1.0);
        assert_eq!(step.shortfall, Watts::ZERO);
    }

    #[test]
    fn precharge_moves_energy_battery_to_cap() {
        let mut h = hees();
        h.set_state(Ratio::ONE, Ratio::new(0.4));
        let soe0 = h.soe();
        let soc0 = h.soc();
        let step = h.step(
            HybridCommand {
                battery_bus: Watts::new(8_000.0),
                cap_bus: Watts::new(-8_000.0),
            },
            room(),
            Seconds::new(10.0),
        );
        assert!(h.soe() > soe0, "cap charged");
        assert!(h.soc() < soc0, "battery paid for it");
        assert!(step.cap_internal.value() < 0.0);
        // Net bus power ≈ 0 (all internal transfer).
        assert!(step.delivered.value().abs() < 100.0);
    }

    #[test]
    fn conversion_loss_grows_as_cap_sags() {
        let mut high = hees();
        high.set_state(Ratio::ONE, Ratio::new(0.95));
        let mut low = hees();
        low.set_state(Ratio::ONE, Ratio::new(0.25));
        let cmd = HybridCommand {
            battery_bus: Watts::ZERO,
            cap_bus: Watts::new(12_000.0),
        };
        let a = high.step(cmd, room(), Seconds::new(1.0));
        let b = low.step(cmd, room(), Seconds::new(1.0));
        assert!(
            b.converter_loss > a.converter_loss,
            "sagged bank {:?} vs full {:?}",
            b.converter_loss,
            a.converter_loss
        );
    }

    #[test]
    fn regen_routed_to_cap_charges_it() {
        let mut h = hees();
        h.set_state(Ratio::new(0.8), Ratio::new(0.5));
        let step = h.step(
            HybridCommand {
                battery_bus: Watts::ZERO,
                cap_bus: Watts::new(-20_000.0),
            },
            room(),
            Seconds::new(5.0),
        );
        assert!(h.soe() > Ratio::new(0.5));
        assert!(step.cap_internal.value() < 0.0);
    }

    #[test]
    fn depleted_cap_cannot_deliver() {
        let mut h = hees();
        h.set_state(Ratio::ONE, Ratio::new(0.002));
        let step = h.step(
            HybridCommand {
                battery_bus: Watts::ZERO,
                cap_bus: Watts::new(15_000.0),
            },
            room(),
            Seconds::new(1.0),
        );
        assert!(step.shortfall.value() > 10_000.0);
    }

    #[test]
    fn battery_rests_when_cap_serves() {
        let mut h = hees();
        h.set_state(Ratio::ONE, Ratio::new(0.9));
        let step = h.step(
            HybridCommand {
                battery_bus: Watts::ZERO,
                cap_bus: Watts::new(15_000.0),
            },
            room(),
            Seconds::new(1.0),
        );
        assert_eq!(step.battery_heat, Watts::ZERO);
        assert_eq!(step.battery_c_rate, 0.0);
    }

    #[test]
    fn snapshot_restore_round_trips_exactly() {
        let mut h = hees();
        h.set_state(Ratio::new(0.85), Ratio::new(0.6));
        let saved = h.snapshot();
        let reference = h.clone();
        h.step(
            HybridCommand {
                battery_bus: Watts::new(30_000.0),
                cap_bus: Watts::new(-5_000.0),
            },
            room(),
            Seconds::new(30.0),
        );
        assert_ne!(h, reference);
        h.restore(saved);
        // Bit-exact rewind: a restored plant is indistinguishable from one
        // that never stepped, so speculative rollouts can reuse it freely.
        assert_eq!(h, reference);
    }

    #[test]
    fn bus_limits_are_positive_and_ordered() {
        let h = hees();
        assert!(h.battery_bus_limit(room()).value() > 100_000.0);
        assert!(h.cap_bus_limit().value() > 10_000.0);
        let mut depleted = hees();
        depleted.set_state(Ratio::ONE, Ratio::new(0.01));
        assert!(depleted.cap_bus_limit() < h.cap_bus_limit());
    }
}
