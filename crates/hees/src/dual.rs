//! The dual (switched) architecture — Shin et al. DATE'14 \[16\], the
//! paper's thermal-management baseline.

use crate::error::HeesError;
use crate::pack_domain_bank;
use crate::step::HeesStep;
use otem_battery::{BatteryPack, CellParams, PackConfig};
use otem_ultracap::{UltracapBank, UltracapParams};
use otem_units::{Farads, Kelvin, Ratio, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Which storage the two switches `S_b`, `S_c` connect to the EV.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DualMode {
    /// Battery alone serves the load.
    Battery,
    /// Ultracapacitor alone serves the load (battery rests and cools).
    Ultracap,
    /// Battery serves the load *and* recharges the ultracapacitor with
    /// the given extra power (W).
    BatteryRecharging(f64),
}

/// Battery and ultracapacitor behind selector switches.
///
/// A policy (e.g. the temperature-threshold rule of \[16\]) chooses the
/// [`DualMode`] each step; the architecture executes it. Switching is
/// lossless (no converters), but only one storage can serve the load at
/// a time, and the ultracapacitor can only be recharged *from the
/// battery*, heating it — the failure mode the paper's Fig. 1 shows for
/// undersized banks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DualHees {
    battery: BatteryPack,
    cap: UltracapBank,
}

impl DualHees {
    /// Builds the paper's EV configuration with a pack-domain bank of
    /// the given cell-referenced capacitance label.
    ///
    /// # Errors
    ///
    /// Returns [`HeesError`] when either storage's parameters fail
    /// validation.
    pub fn ev_default(capacitance_label: Farads) -> Result<Self, HeesError> {
        let battery = BatteryPack::new(CellParams::ncr18650a(), PackConfig::tesla_s_like())?;
        let rated = battery.open_circuit_voltage();
        let params = pack_domain_bank(capacitance_label, rated);
        Self::new(battery, params)
    }

    /// Builds from explicit components.
    ///
    /// # Errors
    ///
    /// Returns [`HeesError`] when the bank parameters fail validation.
    pub fn new(battery: BatteryPack, cap_params: UltracapParams) -> Result<Self, HeesError> {
        Ok(Self {
            battery,
            cap: UltracapBank::new(cap_params)?,
        })
    }

    /// The battery pack.
    pub fn battery(&self) -> &BatteryPack {
        &self.battery
    }

    /// The ultracapacitor bank.
    pub fn cap(&self) -> &UltracapBank {
        &self.cap
    }

    /// Battery state of charge.
    pub fn soc(&self) -> Ratio {
        self.battery.soc()
    }

    /// Ultracapacitor state of energy.
    pub fn soe(&self) -> Ratio {
        self.cap.soe()
    }

    /// Sets initial conditions.
    pub fn set_state(&mut self, soc: Ratio, soe: Ratio) {
        self.battery.set_soc(soc);
        self.cap.set_soe(soe);
    }

    /// `true` when the ultracapacitor can still serve the given load.
    pub fn cap_can_serve(&self, load: Watts) -> bool {
        if load.value() >= 0.0 {
            load <= self.cap.max_discharge_power()
        } else {
            load.abs() <= self.cap.max_charge_power()
        }
    }

    /// Executes one control period in the given mode. Infeasible
    /// requests degrade gracefully: the affected storage delivers what
    /// it can and the remainder appears in [`HeesStep::shortfall`]
    /// (falling back to the battery when the ultracapacitor runs dry
    /// mid-mode, as the switches would).
    pub fn step(
        &mut self,
        mode: DualMode,
        load: Watts,
        temperature: Kelvin,
        dt: Seconds,
    ) -> HeesStep {
        match mode {
            DualMode::Battery => self.battery_step(load, Watts::ZERO, temperature, dt),
            DualMode::BatteryRecharging(extra) => {
                // Recharge power is limited by the bank's headroom.
                let extra = extra.max(0.0).min(self.cap.max_charge_power().value());
                self.battery_step(load, Watts::new(extra), temperature, dt)
            }
            DualMode::Ultracap => {
                if self.cap_can_serve(load) {
                    let draw = match self.cap.draw_power(load) {
                        Ok(d) => d,
                        Err(_) => return self.battery_step(load, Watts::ZERO, temperature, dt),
                    };
                    self.cap.integrate(draw, dt);
                    HeesStep {
                        delivered: load,
                        shortfall: Watts::ZERO,
                        battery_internal: Watts::ZERO,
                        cap_internal: draw.internal_power,
                        battery_heat: Watts::ZERO,
                        battery_c_rate: 0.0,
                        converter_loss: Watts::ZERO,
                    }
                } else {
                    // Bank depleted or overloaded: the switches fall back
                    // to the battery.
                    self.battery_step(load, Watts::ZERO, temperature, dt)
                }
            }
        }
    }

    fn battery_step(
        &mut self,
        load: Watts,
        recharge: Watts,
        temperature: Kelvin,
        dt: Seconds,
    ) -> HeesStep {
        let total = load + recharge;
        let feasible = self.battery.draw_power(total, temperature).or_else(|_| {
            // Clamp to the peak the pack can deliver right now.
            let peak = self.battery.max_discharge_power(temperature) * 0.999;
            self.battery.draw_power(peak.min(total), temperature)
        });
        let draw = match feasible {
            Ok(d) => d,
            Err(_) => {
                return HeesStep {
                    shortfall: load,
                    ..HeesStep::default()
                }
            }
        };
        self.battery.integrate(draw, dt);

        // Recharge leg: whatever of `recharge` fits after serving the load.
        let to_cap = (draw.terminal_power.value() - load.value())
            .max(0.0)
            .min(recharge.value());
        if to_cap > 0.0 {
            if let Ok(cap_draw) = self.cap.draw_power(Watts::new(-to_cap)) {
                self.cap.integrate(cap_draw, dt);
            }
        }
        let delivered = draw.terminal_power - Watts::new(to_cap);
        HeesStep {
            delivered,
            shortfall: Watts::new((load.value() - delivered.value()).max(0.0)),
            battery_internal: draw.internal_power,
            cap_internal: Watts::new(-to_cap),
            battery_heat: draw.heat,
            battery_c_rate: draw.c_rate,
            converter_loss: Watts::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn room() -> Kelvin {
        Kelvin::from_celsius(25.0)
    }

    fn hees() -> DualHees {
        DualHees::ev_default(Farads::new(25_000.0)).expect("valid")
    }

    #[test]
    fn battery_mode_uses_battery_only() {
        let mut h = hees();
        let step = h.step(
            DualMode::Battery,
            Watts::new(30_000.0),
            room(),
            Seconds::new(1.0),
        );
        assert!(step.battery_internal.value() > 30_000.0);
        assert_eq!(step.cap_internal, Watts::ZERO);
        assert!(step.battery_heat.value() > 0.0);
        assert_eq!(step.shortfall, Watts::ZERO);
    }

    #[test]
    fn ultracap_mode_rests_the_battery() {
        let mut h = hees();
        h.set_state(Ratio::ONE, Ratio::new(0.8));
        let step = h.step(
            DualMode::Ultracap,
            Watts::new(20_000.0),
            room(),
            Seconds::new(1.0),
        );
        assert_eq!(step.battery_internal, Watts::ZERO);
        assert_eq!(step.battery_heat, Watts::ZERO);
        assert!(step.cap_internal.value() > 0.0);
        assert!(h.soe() < Ratio::new(0.8));
    }

    #[test]
    fn depleted_cap_falls_back_to_battery() {
        let mut h = hees();
        h.set_state(Ratio::ONE, Ratio::new(0.001));
        let step = h.step(
            DualMode::Ultracap,
            Watts::new(30_000.0),
            room(),
            Seconds::new(1.0),
        );
        assert!(step.battery_internal.value() > 0.0, "battery took over");
        assert!(step.battery_heat.value() > 0.0);
    }

    #[test]
    fn recharging_heats_the_battery_more() {
        let mut h1 = hees();
        let mut h2 = hees();
        h1.set_state(Ratio::ONE, Ratio::new(0.5));
        h2.set_state(Ratio::ONE, Ratio::new(0.5));
        let plain = h1.step(
            DualMode::Battery,
            Watts::new(20_000.0),
            room(),
            Seconds::new(1.0),
        );
        let recharging = h2.step(
            DualMode::BatteryRecharging(15_000.0),
            Watts::new(20_000.0),
            room(),
            Seconds::new(1.0),
        );
        assert!(recharging.battery_heat > plain.battery_heat);
        assert!(h2.soe() > Ratio::new(0.5), "cap actually charged");
        assert_eq!(recharging.shortfall, Watts::ZERO);
    }

    #[test]
    fn regen_in_battery_mode_charges_battery() {
        let mut h = hees();
        h.set_state(Ratio::new(0.7), Ratio::new(0.5));
        let step = h.step(
            DualMode::Battery,
            Watts::new(-25_000.0),
            room(),
            Seconds::new(10.0),
        );
        assert!(step.battery_internal.value() < 0.0);
        assert!(h.soc() > Ratio::new(0.7));
    }

    #[test]
    fn regen_in_cap_mode_charges_cap() {
        let mut h = hees();
        h.set_state(Ratio::new(0.7), Ratio::new(0.5));
        let step = h.step(
            DualMode::Ultracap,
            Watts::new(-25_000.0),
            room(),
            Seconds::new(1.0),
        );
        assert!(step.cap_internal.value() < 0.0);
        assert!(h.soe() > Ratio::new(0.5));
        assert_eq!(step.battery_heat, Watts::ZERO);
    }

    #[test]
    fn small_bank_depletes_within_aggressive_phase() {
        let mut h = DualHees::ev_default(Farads::new(5_000.0)).expect("valid");
        h.set_state(Ratio::ONE, Ratio::ONE);
        let mut battery_took_over_at = None;
        for t in 0..300 {
            let step = h.step(
                DualMode::Ultracap,
                Watts::new(25_000.0),
                room(),
                Seconds::new(1.0),
            );
            if step.battery_internal.value() > 0.0 {
                battery_took_over_at = Some(t);
                break;
            }
        }
        let t = battery_took_over_at.expect("5 kF bank must deplete");
        assert!(t < 40, "depleted only after {t} s");
    }
}
