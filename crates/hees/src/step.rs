//! The per-step bookkeeping record every architecture returns.

use otem_units::Watts;
use serde::{Deserialize, Serialize};

/// What happened inside the HEES during one control period.
///
/// All powers follow the workspace convention: positive = the storage is
/// discharging / the quantity is being consumed.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct HeesStep {
    /// Bus power actually delivered toward the load (after clamping to
    /// feasibility).
    pub delivered: Watts,
    /// Unmet load (requested − delivered); zero when feasible.
    pub shortfall: Watts,
    /// Chemical power drawn from the battery, `V_oc·I` — the paper's
    /// `dE_bat` per unit time (positive discharging).
    pub battery_internal: Watts,
    /// Energy-store power drawn from the ultracapacitor — the paper's
    /// `dE_cap` per unit time (positive discharging, negative while
    /// being charged).
    pub cap_internal: Watts,
    /// Heat generated inside the battery pack (input to the thermal
    /// model, Eq. 4).
    pub battery_heat: Watts,
    /// Battery per-cell C-rate magnitude (stress input to Eq. 5).
    pub battery_c_rate: f64,
    /// Power dissipated in the DC/DC converters (hybrid architecture
    /// only; zero for switched/parallel wiring).
    pub converter_loss: Watts,
}

impl HeesStep {
    /// Total energy-relevant HEES consumption rate: the paper's
    /// `dE_bat + dE_cap` cost term.
    pub fn hees_power(&self) -> Watts {
        self.battery_internal + self.cap_internal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hees_power_sums_both_stores() {
        let step = HeesStep {
            battery_internal: Watts::new(1_000.0),
            cap_internal: Watts::new(-250.0),
            ..HeesStep::default()
        };
        assert_eq!(step.hees_power(), Watts::new(750.0));
    }

    #[test]
    fn default_is_all_zero() {
        let step = HeesStep::default();
        assert_eq!(step.delivered, Watts::ZERO);
        assert_eq!(step.shortfall, Watts::ZERO);
        assert_eq!(step.battery_c_rate, 0.0);
    }
}
