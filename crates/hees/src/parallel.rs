//! The hard-wired parallel architecture (paper Eq. 10–13, after Shin et
//! al. DATE'11 \[15\]).

use crate::error::HeesError;
use crate::pack_domain_bank;
use crate::step::HeesStep;
use otem_battery::{BatteryPack, CellParams, PackConfig};
use otem_ultracap::{UltracapBank, UltracapParams};
use otem_units::{Amps, Farads, Kelvin, Ratio, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Battery and ultracapacitor permanently wired in parallel.
///
/// Nobody commands the split: solving the circuit (Eq. 10–13) determines
/// how the load divides between the storages, and whenever their
/// open-circuit voltages differ an equalisation current flows even at
/// zero load. The ultracapacitor bank lives in the battery's voltage
/// domain (see [`pack_domain_bank`]).
///
/// # Examples
///
/// ```
/// use otem_hees::ParallelHees;
/// use otem_units::{Farads, Kelvin, Seconds, Watts};
///
/// # fn main() -> Result<(), otem_hees::HeesError> {
/// let mut hees = ParallelHees::ev_default(Farads::new(25_000.0))?;
/// let step = hees.step(Watts::new(30_000.0), Kelvin::from_celsius(25.0), Seconds::new(1.0));
/// assert!(step.delivered.value() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParallelHees {
    battery: BatteryPack,
    cap: UltracapBank,
    /// Effective wiring/ESR resistance on the ultracapacitor branch (Ω);
    /// keeps the equalisation current finite.
    branch_resistance: f64,
}

impl ParallelHees {
    /// Builds the paper's EV configuration: Tesla-S-like pack plus a
    /// pack-domain ultracapacitor bank carrying the given cell-referenced
    /// capacitance label.
    ///
    /// # Errors
    ///
    /// Returns [`HeesError`] when either storage's parameters fail
    /// validation.
    pub fn ev_default(capacitance_label: Farads) -> Result<Self, HeesError> {
        let battery = BatteryPack::new(CellParams::ncr18650a(), PackConfig::tesla_s_like())?;
        let rated = battery.open_circuit_voltage(); // full-charge voltage
        let params = pack_domain_bank(capacitance_label, rated);
        Self::new(battery, params)
    }

    /// Builds from explicit components. The bank's rated voltage should
    /// sit in the battery's voltage domain.
    ///
    /// # Errors
    ///
    /// Returns [`HeesError`] when the bank parameters fail validation.
    pub fn new(battery: BatteryPack, cap_params: UltracapParams) -> Result<Self, HeesError> {
        let cap = UltracapBank::new(cap_params)?;
        Ok(Self {
            battery,
            cap,
            branch_resistance: 0.02,
        })
    }

    /// The battery pack.
    pub fn battery(&self) -> &BatteryPack {
        &self.battery
    }

    /// The ultracapacitor bank.
    pub fn cap(&self) -> &UltracapBank {
        &self.cap
    }

    /// Battery state of charge.
    pub fn soc(&self) -> Ratio {
        self.battery.soc()
    }

    /// Ultracapacitor state of energy.
    pub fn soe(&self) -> Ratio {
        self.cap.soe()
    }

    /// Sets initial conditions.
    pub fn set_state(&mut self, soc: Ratio, soe: Ratio) {
        self.battery.set_soc(soc);
        self.cap.set_soe(soe);
    }

    /// Solves the parallel circuit for one control period and applies
    /// the resulting currents.
    ///
    /// Solves Eq. 10–13 for the bus voltage `V_l`:
    /// `G·V_l² − S·V_l + P = 0` with `G = 1/R_b + 1/R_c` and
    /// `S = V_b/R_b + V_c/R_c`, then branch currents follow. When the
    /// load exceeds the circuit's peak power the delivered power is
    /// clamped and the rest is reported as [`HeesStep::shortfall`].
    pub fn step(&mut self, load: Watts, temperature: Kelvin, dt: Seconds) -> HeesStep {
        let v_b = self.battery.open_circuit_voltage().value();
        let r_b = self.battery.internal_resistance(temperature).value();
        let v_c = self.cap.voltage().value();
        let r_c = self.branch_resistance;

        let g = 1.0 / r_b + 1.0 / r_c;
        let s = v_b / r_b + v_c / r_c;
        let p_peak = s * s / (4.0 * g);
        let p = load.value().min(p_peak * 0.999);

        // Root near the open-circuit voltage (stable branch).
        let v_l = (s + (s * s - 4.0 * g * p).sqrt()) / (2.0 * g);
        let i_b = (v_b - v_l) / r_b;
        let i_c = (v_c - v_l) / r_c;

        // Apply to the battery.
        let per_cell = Amps::new(i_b / self.battery.config().parallel as f64);
        let heat = self.battery.cell().heat_generation(per_cell, temperature)
            * self.battery.config().cell_count() as f64;
        let c_rate = self.battery.cell().c_rate(per_cell).abs();
        self.battery.cell_integrate(Amps::new(i_b), dt);

        // Apply to the ultracapacitor: its store sees V_c·I_c.
        let cap_internal = Watts::new(v_c * i_c);
        self.cap.force_integrate(cap_internal, dt);

        HeesStep {
            delivered: Watts::new(p),
            shortfall: Watts::new((load.value() - p).max(0.0)),
            battery_internal: Watts::new(v_b * i_b),
            cap_internal,
            battery_heat: heat,
            battery_c_rate: c_rate,
            converter_loss: Watts::ZERO,
        }
    }
}

/// Private integration helpers that bypass the feasibility guards — the
/// circuit solve above already guarantees consistency.
trait ForceIntegrate {
    fn force_integrate(&mut self, internal_power: Watts, dt: Seconds);
}

impl ForceIntegrate for UltracapBank {
    fn force_integrate(&mut self, internal_power: Watts, dt: Seconds) {
        let e_cap = self.params().energy_capacity().value();
        let delta = internal_power.value() * dt.value() / e_cap;
        let soe = self.soe().value() - delta;
        self.set_soe(Ratio::new(soe));
    }
}

trait CellIntegrate {
    fn cell_integrate(&mut self, pack_current: Amps, dt: Seconds);
}

impl CellIntegrate for BatteryPack {
    fn cell_integrate(&mut self, pack_current: Amps, dt: Seconds) {
        let per_cell = pack_current / self.config().parallel as f64;
        let cap_c = self.cell().params().capacity.to_coulombs().value();
        let delta = per_cell.value() * dt.value() / cap_c;
        let soc = self.soc().value() - delta;
        self.set_soc(Ratio::new(soc));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn room() -> Kelvin {
        Kelvin::from_celsius(25.0)
    }

    fn hees() -> ParallelHees {
        ParallelHees::ev_default(Farads::new(25_000.0)).expect("valid")
    }

    #[test]
    fn load_splits_between_storages() {
        let mut h = hees();
        // Start the cap below the battery voltage so both discharge.
        h.set_state(Ratio::ONE, Ratio::new(0.95));
        let step = h.step(Watts::new(60_000.0), room(), Seconds::new(1.0));
        assert!(step.delivered.value() > 59_000.0);
        assert!(step.battery_internal.value() > 0.0);
        assert_eq!(step.converter_loss, Watts::ZERO);
    }

    #[test]
    fn equalisation_flows_at_zero_load() {
        let mut h = hees();
        // Cap well below battery voltage: battery charges it through the
        // branch resistance even with no load.
        h.set_state(Ratio::ONE, Ratio::new(0.5));
        let step = h.step(Watts::ZERO, room(), Seconds::new(1.0));
        assert!(step.battery_internal.value() > 0.0, "battery discharges");
        assert!(step.cap_internal.value() < 0.0, "cap charges");
        assert!(h.soe() > Ratio::new(0.5));
    }

    #[test]
    fn regeneration_charges_both() {
        let mut h = hees();
        h.set_state(Ratio::new(0.7), Ratio::new(0.7));
        let soc0 = h.soc();
        let soe0 = h.soe();
        let step = h.step(Watts::new(-40_000.0), room(), Seconds::new(5.0));
        assert!(step.delivered.value() < 0.0);
        assert!(h.soc() >= soc0 || h.soe() >= soe0, "regen stored somewhere");
    }

    #[test]
    fn overload_is_clamped_with_shortfall() {
        let mut h = hees();
        h.set_state(Ratio::new(0.3), Ratio::new(0.25));
        let step = h.step(Watts::new(5.0e6), room(), Seconds::new(1.0));
        assert!(step.shortfall.value() > 0.0);
        assert!(step.delivered.value() < 5.0e6);
    }

    #[test]
    fn heavy_use_depletes_states() {
        let mut h = hees();
        h.set_state(Ratio::new(0.9), Ratio::new(0.9));
        for _ in 0..300 {
            let _ = h.step(Watts::new(50_000.0), room(), Seconds::new(1.0));
        }
        assert!(h.soc() < Ratio::new(0.9));
        // 15 MJ drained; the 3.2 MJ bank must have given up energy too
        // (it tracks the battery voltage downward).
        assert!(h.soe() < Ratio::new(0.9));
    }

    #[test]
    fn energy_conservation_at_the_bus() {
        let mut h = hees();
        h.set_state(Ratio::ONE, Ratio::new(0.9));
        let load = Watts::new(30_000.0);
        let step = h.step(load, room(), Seconds::new(1.0));
        // internal powers = delivered + resistive losses ≥ delivered
        let internal = step.battery_internal.value() + step.cap_internal.value();
        assert!(internal >= step.delivered.value() - 1e-6);
        // Losses bounded by a few percent at this load.
        assert!(internal < step.delivered.value() * 1.15);
    }
}
