//! Error type for the HEES architectures.

use otem_battery::BatteryError;
use otem_converter::ConverterError;
use otem_ultracap::UltracapError;
use std::error::Error;
use std::fmt;

/// Errors returned by the HEES architecture models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HeesError {
    /// The battery model rejected a parameter or request.
    Battery(BatteryError),
    /// The ultracapacitor model rejected a parameter or request.
    Ultracap(UltracapError),
    /// A converter rejected a parameter or transfer.
    Converter(ConverterError),
    /// The architecture cannot meet the load in its current state (both
    /// storages at their limits).
    LoadInfeasible {
        /// Requested bus power (W).
        requested: f64,
        /// Best deliverable bus power (W).
        available: f64,
    },
}

impl fmt::Display for HeesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Battery(e) => write!(f, "battery: {e}"),
            Self::Ultracap(e) => write!(f, "ultracapacitor: {e}"),
            Self::Converter(e) => write!(f, "converter: {e}"),
            Self::LoadInfeasible {
                requested,
                available,
            } => write!(
                f,
                "HEES cannot deliver {requested} W (at most {available} W available)"
            ),
        }
    }
}

impl Error for HeesError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Battery(e) => Some(e),
            Self::Ultracap(e) => Some(e),
            Self::Converter(e) => Some(e),
            Self::LoadInfeasible { .. } => None,
        }
    }
}

impl From<BatteryError> for HeesError {
    fn from(e: BatteryError) -> Self {
        Self::Battery(e)
    }
}

impl From<UltracapError> for HeesError {
    fn from(e: UltracapError) -> Self {
        Self::Ultracap(e)
    }
}

impl From<ConverterError> for HeesError {
    fn from(e: ConverterError) -> Self {
        Self::Converter(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HeesError>();
    }

    #[test]
    fn sources_chain() {
        let e = HeesError::from(BatteryError::InvalidParameter {
            name: "x",
            value: 0.0,
            constraint: "> 0",
        });
        assert!(e.source().is_some());
        assert!(e.to_string().contains("battery"));
    }
}
