//! Property tests across the HEES architectures: energy conservation and
//! state bounds under arbitrary command sequences.

use otem_hees::{DualHees, DualMode, HybridCommand, HybridHees, ParallelHees};
use otem_units::{Farads, Kelvin, Ratio, Seconds, Watts};
use proptest::prelude::*;

fn temp() -> impl Strategy<Value = Kelvin> {
    (0.0..50.0f64).prop_map(Kelvin::from_celsius)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_states_bounded_under_arbitrary_loads(
        loads in prop::collection::vec(-60_000.0..60_000.0f64, 1..80),
        soc in 0.3..1.0f64,
        soe in 0.0..=1.0f64,
        t in temp(),
    ) {
        let mut h = ParallelHees::ev_default(Farads::new(25_000.0)).unwrap();
        h.set_state(Ratio::new(soc), Ratio::new(soe));
        for &p in &loads {
            let step = h.step(Watts::new(p), t, Seconds::new(1.0));
            prop_assert!((0.0..=1.0).contains(&h.soc().value()));
            prop_assert!((0.0..=1.0).contains(&h.soe().value()));
            prop_assert!(step.battery_heat.value().is_finite());
            // The circuit never delivers more than requested (discharge).
            if p > 0.0 {
                prop_assert!(step.delivered.value() <= p + 1e-6);
            }
        }
    }

    #[test]
    fn dual_modes_never_create_energy(
        loads in prop::collection::vec(0.0..50_000.0f64, 1..60),
        mode_seed in 0..3usize,
        t in temp(),
    ) {
        let mut h = DualHees::ev_default(Farads::new(25_000.0)).unwrap();
        h.set_state(Ratio::new(0.9), Ratio::new(0.8));
        for (i, &p) in loads.iter().enumerate() {
            let mode = match (i + mode_seed) % 3 {
                0 => DualMode::Battery,
                1 => DualMode::Ultracap,
                _ => DualMode::BatteryRecharging(5_000.0),
            };
            let step = h.step(mode, Watts::new(p), t, Seconds::new(1.0));
            let internal = step.battery_internal.value() + step.cap_internal.value();
            prop_assert!(
                internal >= step.delivered.value() - 1e-6,
                "mode {mode:?} created energy: {internal} < {}",
                step.delivered.value()
            );
        }
    }

    #[test]
    fn hybrid_conversion_always_loses(
        bat_kw in -40.0..40.0f64,
        cap_kw in -40.0..40.0f64,
        soe in 0.2..1.0f64,
        t in temp(),
    ) {
        let mut h = HybridHees::ev_default(Farads::new(25_000.0)).unwrap();
        h.set_state(Ratio::new(0.9), Ratio::new(soe));
        let step = h.step(
            HybridCommand {
                battery_bus: Watts::new(bat_kw * 1000.0),
                cap_bus: Watts::new(cap_kw * 1000.0),
            },
            t,
            Seconds::new(1.0),
        );
        prop_assert!(step.converter_loss.value() >= -1e-9);
        prop_assert!(step.battery_heat.value().is_finite());
        prop_assert!((0.0..=1.0).contains(&h.soc().value()));
        prop_assert!((0.0..=1.0).contains(&h.soe().value()));
    }

    #[test]
    fn hybrid_precharge_round_trip_is_lossy(
        transfer_kw in 2.0..30.0f64,
        soe in 0.3..0.6f64,
    ) {
        // Move energy battery → cap, then cap → battery: the cap must
        // return less than the battery originally spent.
        let t = Kelvin::from_celsius(25.0);
        let mut h = HybridHees::ev_default(Farads::new(25_000.0)).unwrap();
        h.set_state(Ratio::new(0.9), Ratio::new(soe));
        let p = Watts::new(transfer_kw * 1000.0);
        let charge = h.step(
            HybridCommand { battery_bus: p, cap_bus: -p },
            t,
            Seconds::new(5.0),
        );
        let discharge = h.step(
            HybridCommand { battery_bus: -p, cap_bus: p },
            t,
            Seconds::new(5.0),
        );
        let battery_spent = charge.battery_internal.value() * 5.0;
        let battery_got = -discharge.battery_internal.value() * 5.0;
        prop_assert!(
            battery_got < battery_spent,
            "round trip gained energy: spent {battery_spent}, got {battery_got}"
        );
    }
}
