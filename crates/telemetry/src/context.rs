//! Correlation context: the `request_id` that joins telemetry back to
//! the serving-layer request that caused it.
//!
//! The serving layer mints a `request_id` when it accepts a
//! connection; everything that happens on behalf of that request —
//! per-vehicle simulation, MPC solves, fault containment — should be
//! attributable to it after the fact. Threading an id argument through
//! every plant/solver signature would bloat APIs that are pinned by
//! the zero-cost contract, so the id rides in a thread-local instead:
//! set by an RAII [`RequestScope`] at the dispatch boundary, read by
//! consumers that stamp records (the flight recorder, per-request
//! sinks).
//!
//! Worker threads do **not** inherit the thread-local — whoever fans
//! work out (the fleet engine's per-vehicle job closures) re-enters
//! the scope on the worker. `0` means "no request": background work,
//! tests, the bench bins' in-process runs.

use std::cell::Cell;
use std::marker::PhantomData;

thread_local! {
    /// The current request id on this thread (`0` = none).
    static REQUEST_ID: Cell<u64> = const { Cell::new(0) };
}

/// The request id active on this thread (`0` when none is set).
pub fn current_request_id() -> u64 {
    REQUEST_ID.with(|c| c.get())
}

/// Sets the thread's request id for the guard's lifetime; the previous
/// id is restored on drop, so scopes nest (a re-entrant engine call
/// inside a request keeps the outer id after the inner scope closes).
pub fn request_scope(id: u64) -> RequestScope {
    let prev = REQUEST_ID.with(|c| c.replace(id));
    RequestScope {
        prev,
        _not_send: PhantomData,
    }
}

/// RAII guard for [`request_scope`]: restores the previous request id
/// on drop. `!Send` — a scope opens and closes on one thread.
#[derive(Debug)]
pub struct RequestScope {
    prev: u64,
    _not_send: PhantomData<*const ()>,
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        REQUEST_ID.with(|c| c.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_nest_and_restore() {
        assert_eq!(current_request_id(), 0);
        {
            let _outer = request_scope(7);
            assert_eq!(current_request_id(), 7);
            {
                let _inner = request_scope(9);
                assert_eq!(current_request_id(), 9);
            }
            assert_eq!(current_request_id(), 7);
        }
        assert_eq!(current_request_id(), 0);
    }

    #[test]
    fn threads_do_not_inherit_the_scope() {
        let _scope = request_scope(42);
        std::thread::scope(|s| {
            s.spawn(|| assert_eq!(current_request_id(), 0, "fresh thread, fresh context"));
        });
        assert_eq!(current_request_id(), 42);
    }
}
