//! The always-on flight recorder: a bounded ring of recent telemetry,
//! frozen at the moment something goes wrong.
//!
//! Production failures are post-hoc: by the time a panic is caught or
//! the supervisor falls back to the rule-based policy, the JSONL
//! stream that would explain *why* has long been discarded (or was
//! never requested — the nominal path runs a [`NullSink`]). The
//! recorder keeps the last N events per lane shard at all times, each
//! stamped with its originating [`request_id`](crate::context), and
//! **freezes** a copy the instant it observes a containment event
//! flowing through it:
//!
//! * [`Event::PanicCaught`] — a request handler or vehicle panicked;
//! * [`Event::FallbackEngaged`] — the supervisor disarmed the MPC.
//!
//! Freezing *observes the event stream* instead of requiring the
//! supervisor or the catch-unwind sites to know the recorder exists —
//! they keep emitting the events they already emit. The first trigger
//! wins (the dump describes the *first* incident, not the last); the
//! serving layer drains it with [`FlightRecorder::take_dump`] and
//! writes it as JSONL, and `/debug/flight` snapshots the live ring on
//! demand.
//!
//! The recorder is **not** on the nominal zero-cost path: it only sees
//! events when it is installed as (part of) a sink, which the serving
//! layer does per request. The golden-trace and allocation-parity
//! suites run over `NullSink` and never touch it.
//!
//! [`NullSink`]: crate::NullSink
//! [`Event::PanicCaught`]: crate::Event::PanicCaught
//! [`Event::FallbackEngaged`]: crate::Event::FallbackEngaged

use crate::context::current_request_id;
use crate::event::Event;
use crate::ring::RingBuffer;
use crate::sink::Sink;
use crate::span;
use std::fmt::Write as _;
use std::sync::Mutex;

/// One recorded event with its correlation stamps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightEntry {
    /// Nanoseconds on the process-wide monotonic epoch at record time.
    pub t_ns: u64,
    /// The recording thread's lane (same id space as span events).
    pub lane: u64,
    /// The request id active on the recording thread (`0` = none).
    pub request_id: u64,
    /// The recorded event.
    pub event: Event,
}

impl FlightEntry {
    /// Appends the entry as one JSON object:
    /// `{"t_ns":..,"lane":..,"request_id":..,"event":{..}}`.
    pub fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"t_ns\":{},\"lane\":{},\"request_id\":{},\"event\":",
            self.t_ns, self.lane, self.request_id
        );
        self.event.write_json(out);
        out.push('}');
    }
}

/// A frozen copy of the ring at the moment a trigger fired.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightDump {
    /// The [`Event::kind`] that froze the recorder (`"panic_caught"`,
    /// `"fallback_engaged"`), or `"manual"` for explicit freezes.
    pub trigger: &'static str,
    /// The retained events across all shards, oldest first.
    pub entries: Vec<FlightEntry>,
}

impl FlightDump {
    /// Renders the dump as JSONL: a header line
    /// `{"flight_dump":true,"trigger":..,"entries":N}` followed by one
    /// line per entry.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64 + self.entries.len() * 128);
        let _ = writeln!(
            out,
            "{{\"flight_dump\":true,\"trigger\":\"{}\",\"entries\":{}}}",
            self.trigger,
            self.entries.len()
        );
        for entry in &self.entries {
            entry.write_json(&mut out);
            out.push('\n');
        }
        out
    }
}

/// The recorder: lane-sharded rings of recent [`FlightEntry`]s plus
/// the (at most one) frozen dump. See the module docs for the
/// lifecycle.
#[derive(Debug)]
pub struct FlightRecorder {
    shards: Box<[Mutex<RingBuffer<FlightEntry>>]>,
    frozen: Mutex<Option<FlightDump>>,
}

impl FlightRecorder {
    /// Default shard count (recording threads hash across shards by
    /// lane, so contention stays low without per-thread registration).
    pub const DEFAULT_SHARDS: usize = 8;

    /// Default per-shard retention (entries).
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// A recorder with the default shape.
    pub fn new() -> Self {
        Self::with_shape(Self::DEFAULT_SHARDS, Self::DEFAULT_CAPACITY)
    }

    /// A recorder with `shards` rings of `capacity` entries each.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `capacity` is zero.
    pub fn with_shape(shards: usize, capacity: usize) -> Self {
        assert!(shards > 0, "flight recorder needs at least one shard");
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(RingBuffer::new(capacity)))
                .collect(),
            frozen: Mutex::new(None),
        }
    }

    /// The live ring contents across all shards, oldest first (by
    /// record timestamp) — what `/debug/flight` serves on demand.
    pub fn live_entries(&self) -> Vec<FlightEntry> {
        let mut entries: Vec<FlightEntry> = Vec::new();
        for shard in self.shards.iter() {
            let ring = shard.lock().unwrap_or_else(|e| e.into_inner());
            entries.extend(ring.iter().copied());
        }
        entries.sort_by_key(|e| e.t_ns);
        entries
    }

    /// Freezes the current ring as a dump with the given trigger, if
    /// no dump is already held. Returns `true` when this call froze
    /// (first trigger wins).
    pub fn freeze(&self, trigger: &'static str) -> bool {
        let mut frozen = self.frozen.lock().unwrap_or_else(|e| e.into_inner());
        if frozen.is_some() {
            return false;
        }
        *frozen = Some(FlightDump {
            trigger,
            entries: self.live_entries(),
        });
        true
    }

    /// `true` when a frozen dump is waiting to be drained.
    pub fn has_dump(&self) -> bool {
        self.frozen
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_some()
    }

    /// Drains the frozen dump, re-arming the recorder for the next
    /// incident.
    pub fn take_dump(&self) -> Option<FlightDump> {
        self.frozen.lock().unwrap_or_else(|e| e.into_inner()).take()
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Sink for FlightRecorder {
    fn record(&self, event: Event) {
        let entry = FlightEntry {
            t_ns: span::now_ns(),
            lane: span::lane(),
            request_id: current_request_id(),
            event,
        };
        let shard = (entry.lane as usize) % self.shards.len();
        self.shards[shard]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(entry);
        // Containment events freeze the ring *after* being recorded,
        // so the trigger itself is the dump's last entry for its lane.
        if matches!(
            event,
            Event::PanicCaught { .. } | Event::FallbackEngaged { .. }
        ) {
            self.freeze(event.kind());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::request_scope;

    #[test]
    fn records_stamp_the_active_request_id() {
        let recorder = FlightRecorder::with_shape(2, 16);
        {
            let _scope = request_scope(42);
            recorder.record(Event::PoolHit);
        }
        recorder.record(Event::PoolMiss);
        let entries = recorder.live_entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].request_id, 42);
        assert_eq!(entries[0].event, Event::PoolHit);
        assert_eq!(entries[1].request_id, 0, "scope closed");
    }

    #[test]
    fn panic_caught_freezes_and_first_trigger_wins() {
        let recorder = FlightRecorder::with_shape(1, 16);
        recorder.record(Event::PoolHit);
        assert!(!recorder.has_dump());
        recorder.record(Event::PanicCaught { context: "vehicle" });
        assert!(recorder.has_dump());
        recorder.record(Event::FallbackEngaged {
            step: 3,
            backoff_steps: 5,
        });
        let dump = recorder.take_dump().expect("frozen");
        assert_eq!(dump.trigger, "panic_caught", "first trigger wins");
        assert_eq!(dump.entries.len(), 2, "frozen before the later event");
        assert_eq!(
            dump.entries.last().map(|e| e.event),
            Some(Event::PanicCaught { context: "vehicle" }),
            "the trigger is the last frozen entry"
        );
        assert!(!recorder.has_dump(), "take_dump re-arms");
        recorder.record(Event::FallbackEngaged {
            step: 9,
            backoff_steps: 5,
        });
        assert_eq!(
            recorder.take_dump().map(|d| d.trigger),
            Some("fallback_engaged"),
            "re-armed recorder freezes on the next incident"
        );
    }

    #[test]
    fn ring_retention_is_bounded_per_shard() {
        let recorder = FlightRecorder::with_shape(1, 4);
        for _ in 0..10 {
            recorder.record(Event::PoolHit);
        }
        assert_eq!(recorder.live_entries().len(), 4);
    }

    #[test]
    fn dump_renders_as_jsonl_with_header() {
        let recorder = FlightRecorder::with_shape(1, 8);
        {
            let _scope = request_scope(7);
            recorder.record(Event::PanicCaught { context: "request" });
        }
        let jsonl = recorder.take_dump().expect("frozen").to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(
            lines[0],
            "{\"flight_dump\":true,\"trigger\":\"panic_caught\",\"entries\":1}"
        );
        assert!(lines[1].contains("\"request_id\":7"), "{jsonl}");
        assert!(
            lines[1].contains("\"event\":{\"event\":\"panic_caught\""),
            "{jsonl}"
        );
    }

    #[test]
    fn manual_freeze_uses_the_manual_trigger() {
        let recorder = FlightRecorder::new();
        recorder.record(Event::PoolHit);
        assert!(recorder.freeze("manual"));
        assert!(!recorder.freeze("manual"), "already frozen");
        assert_eq!(recorder.take_dump().map(|d| d.trigger), Some("manual"));
    }
}
