//! Metric primitives: counters, gauges, fixed-bucket histograms.
//!
//! All three are interior-mutable (`&self` updates) so one instance can
//! be shared by the solver's scoped gradient-worker threads without
//! locks on the hot path.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotone event counter.
///
/// ```
/// use otem_telemetry::Counter;
/// let c = Counter::new();
/// c.inc();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Clone for Counter {
    fn clone(&self) -> Self {
        Self(AtomicU64::new(self.get()))
    }
}

/// A last-value-wins gauge over `f64` (stored as bits in an atomic).
///
/// ```
/// use otem_telemetry::Gauge;
/// let g = Gauge::new();
/// g.set(36.5);
/// assert_eq!(g.get(), 36.5);
/// ```
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self(AtomicU64::new(0f64.to_bits()))
    }

    /// Replaces the value.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for Gauge {
    fn clone(&self) -> Self {
        let g = Gauge::new();
        g.set(self.get());
        g
    }
}

/// A fixed-bucket histogram.
///
/// `bounds` are the inclusive upper edges of the finite buckets, sorted
/// strictly ascending; one implicit overflow bucket catches everything
/// above the last edge (and non-finite observations, so counts are
/// always conserved: the total count equals the number of
/// observations).
///
/// ```
/// use otem_telemetry::Histogram;
/// let h = Histogram::with_bounds(&[1.0, 10.0]);
/// h.observe(0.5);
/// h.observe(5.0);
/// h.observe(100.0);
/// assert_eq!(h.snapshot(), vec![1, 1, 1]);
/// assert_eq!(h.count(), 3);
/// ```
#[derive(Debug)]
pub struct Histogram {
    bounds: Box<[f64]>,
    counts: Box<[AtomicU64]>,
    /// Running sum of all *finite* observations, stored as `f64` bits.
    /// Non-finite observations are still counted (overflow bucket) but
    /// excluded from the sum, so one stray `NaN` cannot poison the
    /// Prometheus `_sum` series.
    sum: AtomicU64,
}

impl Histogram {
    /// A histogram over the given inclusive upper bucket edges (plus
    /// the implicit overflow bucket).
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty, non-finite, or not strictly
    /// ascending.
    pub fn with_bounds(bounds: &[f64]) -> Self {
        assert!(
            !bounds.is_empty(),
            "histogram needs at least one bucket edge"
        );
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bucket edges must be finite"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bucket edges must be strictly ascending"
        );
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds: bounds.into(),
            counts,
            sum: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Exponential bucket edges `start, start·factor, …` (`n` edges) —
    /// the usual shape for latencies and iteration counts.
    ///
    /// # Panics
    ///
    /// Panics if `start <= 0`, `factor <= 1`, or `n == 0`.
    pub fn exponential(start: f64, factor: f64, n: usize) -> Self {
        assert!(
            start > 0.0 && factor > 1.0 && n > 0,
            "invalid exponential buckets"
        );
        let mut bounds = Vec::with_capacity(n);
        let mut edge = start;
        for _ in 0..n {
            bounds.push(edge);
            edge *= factor;
        }
        Self::with_bounds(&bounds)
    }

    /// The bucket index `value` falls into (the last index is the
    /// overflow bucket; non-finite values land there too).
    pub fn bucket_for(&self, value: f64) -> usize {
        self.bounds
            .iter()
            .position(|&edge| value <= edge)
            .unwrap_or(self.bounds.len())
    }

    /// Records one observation.
    pub fn observe(&self, value: f64) {
        self.counts[self.bucket_for(value)].fetch_add(1, Ordering::Relaxed);
        if value.is_finite() {
            self.add_to_sum(value);
        }
    }

    /// CAS-adds `v` to the running sum (stored as `f64` bits).
    fn add_to_sum(&self, v: f64) {
        let mut cur = self.sum.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .sum
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Sum of all finite observations (the Prometheus `_sum` series).
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum.load(Ordering::Relaxed))
    }

    /// The inclusive upper bucket edges.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts, finite buckets first, overflow last.
    pub fn snapshot(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`) estimated by linear
    /// interpolation within the winning bucket.
    ///
    /// The rank `q·count` is located by a cumulative scan; within the
    /// winning bucket the estimate interpolates linearly from its lower
    /// edge (the previous bound, or `min(first bound, 0)` for the first
    /// bucket) to its upper bound. The overflow bucket has no upper
    /// edge, so quantiles landing there **saturate** at the last finite
    /// bound — a deliberate under-estimate that keeps p99 reporting
    /// stable instead of extrapolating into the open tail.
    ///
    /// Returns `NaN` when the histogram is empty.
    ///
    /// ```
    /// use otem_telemetry::Histogram;
    /// let h = Histogram::with_bounds(&[10.0, 20.0]);
    /// for _ in 0..10 {
    ///     h.observe(15.0); // all mass in (10, 20]
    /// }
    /// assert_eq!(h.quantile(0.0), 10.0);
    /// assert_eq!(h.quantile(0.5), 15.0);
    /// assert_eq!(h.quantile(1.0), 20.0);
    /// ```
    pub fn quantile(&self, q: f64) -> f64 {
        let counts = self.snapshot();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return f64::NAN;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let rank = q * total as f64;
        let mut cum = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let reached = cum + c;
            if reached as f64 >= rank {
                let last = self.bounds[self.bounds.len() - 1];
                if i == self.bounds.len() {
                    // Overflow bucket: saturate at the last finite edge.
                    return last;
                }
                let upper = self.bounds[i];
                let lower = if i == 0 {
                    upper.min(0.0)
                } else {
                    self.bounds[i - 1]
                };
                let frac = ((rank - cum as f64) / c as f64).clamp(0.0, 1.0);
                return lower + (upper - lower) * frac;
            }
            cum = reached;
        }
        self.bounds[self.bounds.len() - 1]
    }

    /// Adds every bucket of `other` into `self`. Merging is commutative
    /// and associative on the per-bucket counts, so the merge order of
    /// a set of histograms never matters.
    ///
    /// # Panics
    ///
    /// Panics if the bucket edges differ.
    pub fn merge(&self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket edges"
        );
        for (mine, theirs) in self.counts.iter().zip(other.counts.iter()) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.add_to_sum(other.sum());
    }
}

impl Clone for Histogram {
    fn clone(&self) -> Self {
        let fresh = Histogram::with_bounds(&self.bounds);
        fresh.merge(self);
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 11);
        assert_eq!(c.clone().get(), 11);
    }

    #[test]
    fn gauge_last_value_wins() {
        let g = Gauge::new();
        g.set(-3.25);
        g.set(7.5);
        assert_eq!(g.get(), 7.5);
    }

    #[test]
    fn histogram_buckets_are_inclusive_upper_edges() {
        let h = Histogram::with_bounds(&[1.0, 2.0]);
        h.observe(1.0); // first bucket (inclusive)
        h.observe(1.5); // second
        h.observe(2.5); // overflow
        assert_eq!(h.snapshot(), vec![1, 1, 1]);
    }

    #[test]
    fn non_finite_observations_are_conserved() {
        let h = Histogram::with_bounds(&[1.0]);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(f64::NEG_INFINITY);
        assert_eq!(h.count(), 3);
        // NaN and +inf overflow; -inf compares below every edge.
        assert_eq!(h.snapshot(), vec![1, 2]);
    }

    #[test]
    fn quantile_interpolates_within_the_winning_bucket() {
        let h = Histogram::with_bounds(&[10.0, 20.0, 40.0]);
        // 4 obs in (10, 20], 4 in (20, 40].
        for v in [12.0, 14.0, 16.0, 18.0, 22.0, 26.0, 30.0, 38.0] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.0), 10.0); // lower edge of first occupied bucket
        assert_eq!(h.quantile(0.25), 15.0); // rank 2 of 4 in (10, 20]
        assert_eq!(h.quantile(0.5), 20.0); // exactly the bucket boundary
        assert_eq!(h.quantile(0.75), 30.0); // rank 2 of 4 in (20, 40]
        assert_eq!(h.quantile(1.0), 40.0);
    }

    #[test]
    fn quantile_saturates_at_the_open_upper_bound() {
        let h = Histogram::with_bounds(&[1.0, 2.0]);
        h.observe(0.5);
        h.observe(1e9); // overflow bucket
        h.observe(1e9);
        assert_eq!(h.quantile(1.0), 2.0, "overflow saturates at last edge");
        assert_eq!(h.quantile(0.99), 2.0);
    }

    #[test]
    fn quantile_of_empty_histogram_is_nan() {
        let h = Histogram::with_bounds(&[1.0]);
        assert!(h.quantile(0.5).is_nan());
    }

    #[test]
    fn quantile_clamps_q_and_tolerates_nan() {
        let h = Histogram::with_bounds(&[10.0, 20.0]);
        h.observe(15.0);
        assert_eq!(h.quantile(-3.0), h.quantile(0.0));
        assert_eq!(h.quantile(7.0), h.quantile(1.0));
        assert_eq!(h.quantile(f64::NAN), h.quantile(0.0));
    }

    #[test]
    fn quantile_first_bucket_lower_edge_never_exceeds_zero() {
        let h = Histogram::with_bounds(&[10.0]);
        h.observe(5.0);
        h.observe(5.0);
        // Lower edge of the first bucket is min(bound, 0) = 0.
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(0.5), 5.0);
        let neg = Histogram::with_bounds(&[-5.0, 5.0]);
        neg.observe(-10.0);
        assert_eq!(neg.quantile(0.0), -5.0, "negative edge is its own floor");
    }

    #[test]
    fn sum_tracks_finite_observations_and_merges() {
        let h = Histogram::with_bounds(&[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(f64::NAN); // counted, excluded from the sum
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 5.5);
        let other = Histogram::with_bounds(&[1.0, 10.0]);
        other.observe(4.5);
        h.merge(&other);
        assert_eq!(h.sum(), 10.0);
        assert_eq!(h.clone().sum(), 10.0, "clone carries the sum");
    }

    #[test]
    fn merge_adds_bucketwise() {
        let a = Histogram::with_bounds(&[10.0, 20.0]);
        let b = Histogram::with_bounds(&[10.0, 20.0]);
        a.observe(5.0);
        b.observe(15.0);
        b.observe(25.0);
        a.merge(&b);
        assert_eq!(a.snapshot(), vec![1, 1, 1]);
        assert_eq!(b.snapshot(), vec![0, 1, 1], "source unchanged");
    }

    #[test]
    fn exponential_edges_grow_geometrically() {
        let h = Histogram::exponential(1.0, 2.0, 4);
        assert_eq!(h.bounds(), &[1.0, 2.0, 4.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "different bucket edges")]
    fn merging_mismatched_edges_panics() {
        Histogram::with_bounds(&[1.0]).merge(&Histogram::with_bounds(&[2.0]));
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_edges_rejected() {
        let _ = Histogram::with_bounds(&[2.0, 1.0]);
    }
}
