//! Sinks: where emitted events go.

use crate::event::{write_json_string, Event};
use crate::metrics::Counter;
use crate::ring::RingBuffer;
use crate::span;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// An event consumer.
///
/// Sinks are passed as `&dyn Sink` through the instrumented stack, so
/// the trait is object-safe and `Sync` (the MPC's parallel gradient
/// workers may emit concurrently). Implementations must be strictly
/// observational: recording an event may never influence the
/// computation that emitted it.
pub trait Sink: Sync {
    /// Consumes one event.
    fn record(&self, event: Event);

    /// `false` when recording is a guaranteed no-op ([`NullSink`]) —
    /// lets call sites skip *expensive derived* computations, never
    /// required for plain event emission.
    fn enabled(&self) -> bool {
        true
    }

    /// Flushes any buffered output (no-op by default).
    fn flush(&self) {}
}

/// The default sink: discards everything.
///
/// `record` is an empty inlineable virtual call over `Copy` data, so
/// the instrumented path with a `NullSink` allocates nothing and
/// computes exactly what an uninstrumented run computes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _event: Event) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Retains the most recent events in a bounded ring buffer — the sink
/// for tests and in-process inspection.
#[derive(Debug)]
pub struct MemorySink {
    ring: Mutex<RingBuffer<Event>>,
}

impl MemorySink {
    /// Default retention (events).
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// A sink retaining the last [`MemorySink::DEFAULT_CAPACITY`]
    /// events.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// A sink retaining the last `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            ring: Mutex::new(RingBuffer::new(capacity)),
        }
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("memory sink poisoned").len()
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.ring.lock().expect("memory sink poisoned").to_vec()
    }

    /// Number of retained events of the given [`Event::kind`].
    pub fn count_kind(&self, kind: &str) -> usize {
        self.ring
            .lock()
            .expect("memory sink poisoned")
            .iter()
            .filter(|e| e.kind() == kind)
            .count()
    }

    /// Drops all retained events.
    pub fn clear(&self) {
        self.ring.lock().expect("memory sink poisoned").clear();
    }
}

impl Default for MemorySink {
    fn default() -> Self {
        Self::new()
    }
}

impl Sink for MemorySink {
    fn record(&self, event: Event) {
        self.ring.lock().expect("memory sink poisoned").push(event);
    }
}

/// Streams events as JSON lines to any writer — the sink behind the
/// `results/*.jsonl` telemetry the experiment bins produce.
///
/// The encode buffer is reused across records, so steady-state
/// recording performs no allocation beyond what the writer itself does.
///
/// Telemetry must never abort the computation it observes, so write
/// errors do not propagate — but they are not invisible either: every
/// record the writer refuses increments [`JsonlSink::dropped_records`],
/// and dropping the sink flushes whatever the writer buffered, so a
/// sink that goes out of scope (a per-request sink on a closed
/// connection, say) leaves neither silent loss nor unflushed tail.
#[derive(Debug)]
pub struct JsonlSink<W: Write + Send> {
    inner: Mutex<JsonlState<W>>,
    dropped: Counter,
}

#[derive(Debug)]
struct JsonlState<W> {
    /// `None` only after [`JsonlSink::into_inner`] surrendered the
    /// writer (the sink records nothing further and its `Drop` is a
    /// no-op).
    writer: Option<W>,
    buf: String,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) `path` and streams events into it through a
    /// buffered writer.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps the writer.
    pub fn new(writer: W) -> Self {
        Self {
            inner: Mutex::new(JsonlState {
                writer: Some(writer),
                buf: String::with_capacity(256),
            }),
            dropped: Counter::new(),
        }
    }

    /// Records the writer refused (write errors). Lossy telemetry is
    /// observable here instead of silently absorbed.
    pub fn dropped_records(&self) -> u64 {
        self.dropped.get()
    }

    /// Flushes and returns the writer.
    pub fn into_inner(self) -> W {
        let mut state = self.inner.lock().expect("jsonl sink poisoned");
        let mut writer = state
            .writer
            .take()
            .expect("writer only leaves through into_inner");
        let _ = writer.flush();
        drop(state);
        writer
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn record(&self, event: Event) {
        let state = &mut *self.inner.lock().expect("jsonl sink poisoned");
        state.buf.clear();
        event.write_json(&mut state.buf);
        state.buf.push('\n');
        // I/O errors don't propagate (telemetry must never abort the
        // simulation it observes) but each refused record is counted —
        // see `dropped_records`.
        let Some(writer) = state.writer.as_mut() else {
            self.dropped.inc();
            return;
        };
        if writer.write_all(state.buf.as_bytes()).is_err() {
            self.dropped.inc();
        }
    }

    fn flush(&self) {
        if let Some(writer) = self
            .inner
            .lock()
            .expect("jsonl sink poisoned")
            .writer
            .as_mut()
        {
            let _ = writer.flush();
        }
    }
}

impl<W: Write + Send> Drop for JsonlSink<W> {
    /// Best-effort flush, so a sink dropped mid-stream (per-request
    /// sinks, panicking callers) does not strand buffered lines in the
    /// writer.
    fn drop(&mut self) {
        let mut state = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(writer) = state.writer.as_mut() {
            let _ = writer.flush();
        }
    }
}

/// Streams events in the Chrome Trace Event (JSON Array) format, so a
/// run opens directly in `chrome://tracing` or
/// [Perfetto](https://ui.perfetto.dev).
///
/// * [`Event::SpanStart`] / [`Event::SpanEnd`] become `ph:"B"` /
///   `ph:"E"` duration records; the span's lane becomes the `tid`, so
///   the MPC's parallel gradient workers render as separate timeline
///   rows; timestamps are microseconds with nanosecond resolution
///   (fractional `ts`).
/// * Every other event becomes a thread-scoped instant record
///   (`ph:"i"`, `s:"t"`) stamped at record time, with the event's own
///   JSONL object embedded under `args`, so cooling toggles, pool
///   misses and fault injections show up as markers on the timeline.
///
/// [`ChromeTraceSink::finish`] writes the closing `]`. Both Chrome and
/// Perfetto tolerate a missing terminator (the format spec makes the
/// closing bracket optional), so a trace cut short by a crash still
/// loads — but [`finish`](ChromeTraceSink::finish) is what makes the
/// output strictly valid JSON.
#[derive(Debug)]
pub struct ChromeTraceSink<W: Write + Send> {
    inner: Mutex<ChromeState<W>>,
}

#[derive(Debug)]
struct ChromeState<W> {
    writer: W,
    buf: String,
    any: bool,
}

impl ChromeTraceSink<BufWriter<File>> {
    /// Creates (truncating) `path` and streams the trace into it
    /// through a buffered writer.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write + Send> ChromeTraceSink<W> {
    /// Wraps the writer.
    pub fn new(writer: W) -> Self {
        Self {
            inner: Mutex::new(ChromeState {
                writer,
                buf: String::with_capacity(256),
                any: false,
            }),
        }
    }

    /// Writes the closing `]`, flushes, and returns the writer. An
    /// empty trace becomes `[]`.
    pub fn finish(self) -> W {
        let mut state = self.inner.into_inner().expect("chrome sink poisoned");
        let _ = if state.any {
            state.writer.write_all(b"\n]\n")
        } else {
            state.writer.write_all(b"[]\n")
        };
        let _ = state.writer.flush();
        state.writer
    }
}

impl<W: Write + Send> Sink for ChromeTraceSink<W> {
    fn record(&self, event: Event) {
        let state = &mut *self.inner.lock().expect("chrome sink poisoned");
        state.buf.clear();
        state.buf.push_str(if state.any { ",\n" } else { "[\n" });
        let buf = &mut state.buf;
        match event {
            Event::SpanStart {
                name, lane, t_ns, ..
            } => {
                buf.push_str("{\"name\":");
                write_json_string(buf, name);
                let _ = write!(
                    buf,
                    ",\"cat\":\"span\",\"ph\":\"B\",\"pid\":1,\"tid\":{lane},\"ts\":{:.3}}}",
                    t_ns as f64 / 1_000.0
                );
            }
            Event::SpanEnd {
                name, lane, t_ns, ..
            } => {
                buf.push_str("{\"name\":");
                write_json_string(buf, name);
                let _ = write!(
                    buf,
                    ",\"cat\":\"span\",\"ph\":\"E\",\"pid\":1,\"tid\":{lane},\"ts\":{:.3}}}",
                    t_ns as f64 / 1_000.0
                );
            }
            other => {
                // Thread-scoped instant marker stamped now, on this
                // thread's lane, carrying the event's fields as args.
                buf.push_str("{\"name\":");
                write_json_string(buf, other.kind());
                let _ = write!(
                    buf,
                    ",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\
                     \"tid\":{},\"ts\":{:.3},\"args\":",
                    span::lane(),
                    span::now_ns() as f64 / 1_000.0
                );
                other.write_json(buf);
                buf.push('}');
            }
        }
        // I/O errors are swallowed, as in JsonlSink: telemetry must
        // never abort the simulation it observes.
        let _ = state.writer.write_all(state.buf.as_bytes());
        state.any = true;
    }

    fn flush(&self) {
        let _ = self
            .inner
            .lock()
            .expect("chrome sink poisoned")
            .writer
            .flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_discards() {
        let sink = NullSink;
        sink.record(Event::PoolHit);
        assert!(!sink.enabled());
    }

    #[test]
    fn memory_sink_retains_in_order_up_to_capacity() {
        let sink = MemorySink::with_capacity(2);
        sink.record(Event::PoolMiss);
        sink.record(Event::PoolHit);
        sink.record(Event::PoolHit);
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.events(), vec![Event::PoolHit, Event::PoolHit]);
        assert_eq!(sink.count_kind("pool_hit"), 2);
        assert_eq!(sink.count_kind("pool_miss"), 0);
        sink.clear();
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let sink = JsonlSink::new(Vec::new());
        sink.record(Event::PoolHit);
        sink.record(Event::GradientEval { dim: 2, threads: 1 });
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "{\"event\":\"pool_hit\"}");
        assert!(lines[1].starts_with("{\"event\":\"gradient_eval\""));
    }

    /// A writer whose writes always fail, and whose flushes flip a
    /// shared flag — lets the tests observe both the dropped-record
    /// accounting and the flush-on-drop contract.
    struct Probe {
        fail_writes: bool,
        flushed: std::sync::Arc<std::sync::atomic::AtomicBool>,
    }

    impl Write for Probe {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.fail_writes {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "probe"))
            } else {
                Ok(buf.len())
            }
        }

        fn flush(&mut self) -> io::Result<()> {
            self.flushed
                .store(true, std::sync::atomic::Ordering::Relaxed);
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_counts_dropped_records() {
        let flushed = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let sink = JsonlSink::new(Probe {
            fail_writes: true,
            flushed: flushed.clone(),
        });
        assert_eq!(sink.dropped_records(), 0);
        sink.record(Event::PoolHit);
        sink.record(Event::PoolMiss);
        assert_eq!(sink.dropped_records(), 2, "both writes failed");
    }

    #[test]
    fn jsonl_sink_flushes_on_drop() {
        let flushed = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let sink = JsonlSink::new(Probe {
            fail_writes: false,
            flushed: flushed.clone(),
        });
        sink.record(Event::PoolHit);
        assert!(!flushed.load(std::sync::atomic::Ordering::Relaxed));
        drop(sink);
        assert!(
            flushed.load(std::sync::atomic::Ordering::Relaxed),
            "drop must flush the writer"
        );
    }

    #[test]
    fn jsonl_sink_into_inner_disarms_the_drop_flush() {
        let flushed = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let sink = JsonlSink::new(Probe {
            fail_writes: false,
            flushed: flushed.clone(),
        });
        sink.record(Event::PoolHit);
        let _writer = sink.into_inner();
        assert!(
            flushed.load(std::sync::atomic::Ordering::Relaxed),
            "into_inner flushes before surrendering the writer"
        );
    }

    #[test]
    fn chrome_sink_writes_b_e_pairs_and_instant_markers() {
        let sink = ChromeTraceSink::new(Vec::new());
        sink.record(Event::SpanStart {
            id: 1,
            parent: 0,
            name: "mpc_solve",
            lane: 3,
            t_ns: 1_500,
        });
        sink.record(Event::PoolMiss);
        sink.record(Event::SpanEnd {
            id: 1,
            name: "mpc_solve",
            lane: 3,
            t_ns: 4_500,
            dur_ns: 3_000,
        });
        let text = String::from_utf8(sink.finish()).unwrap();
        assert!(text.trim_start().starts_with('['));
        assert!(text.trim_end().ends_with(']'));
        assert!(
            text.contains("\"ph\":\"B\",\"pid\":1,\"tid\":3,\"ts\":1.500"),
            "{text}"
        );
        assert!(
            text.contains("\"ph\":\"E\",\"pid\":1,\"tid\":3,\"ts\":4.500"),
            "{text}"
        );
        assert!(
            text.contains("\"name\":\"pool_miss\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\""),
            "{text}"
        );
        assert!(
            text.contains("\"args\":{\"event\":\"pool_miss\"}"),
            "{text}"
        );
    }

    #[test]
    fn empty_chrome_trace_is_an_empty_array() {
        let sink = ChromeTraceSink::new(Vec::new());
        let text = String::from_utf8(sink.finish()).unwrap();
        assert_eq!(text.trim(), "[]");
    }

    #[test]
    fn sinks_are_object_safe() {
        let sinks: Vec<Box<dyn Sink>> = vec![
            Box::new(NullSink),
            Box::new(MemorySink::with_capacity(4)),
            Box::new(JsonlSink::new(Vec::new())),
            Box::new(ChromeTraceSink::new(Vec::new())),
        ];
        for sink in &sinks {
            sink.record(Event::PoolHit);
            sink.flush();
        }
    }
}
