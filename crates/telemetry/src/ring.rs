//! A bounded FIFO buffer: the storage behind [`crate::MemorySink`].

use std::collections::VecDeque;

/// Fixed-capacity ring buffer that evicts the oldest element on
/// overflow and preserves insertion order among the survivors.
///
/// ```
/// use otem_telemetry::RingBuffer;
/// let mut ring = RingBuffer::new(2);
/// assert_eq!(ring.push(1), None);
/// assert_eq!(ring.push(2), None);
/// assert_eq!(ring.push(3), Some(1)); // oldest evicted
/// assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![2, 3]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RingBuffer<T> {
    buf: VecDeque<T>,
    capacity: usize,
}

impl<T> RingBuffer<T> {
    /// A buffer holding at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        Self {
            buf: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Appends `item`, returning the evicted oldest element when full.
    pub fn push(&mut self, item: T) -> Option<T> {
        let evicted = if self.buf.len() == self.capacity {
            self.buf.pop_front()
        } else {
            None
        };
        self.buf.push_back(item);
        evicted
    }

    /// Elements currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when no elements are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }

    /// Drops all elements (capacity unchanged).
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

impl<T: Clone> RingBuffer<T> {
    /// The retained elements, oldest first.
    pub fn to_vec(&self) -> Vec<T> {
        self.buf.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_at_most_capacity() {
        let mut ring = RingBuffer::new(3);
        for i in 0..10 {
            ring.push(i);
            assert!(ring.len() <= 3);
        }
        assert_eq!(ring.to_vec(), vec![7, 8, 9]);
    }

    #[test]
    fn eviction_returns_the_oldest() {
        let mut ring = RingBuffer::new(2);
        assert_eq!(ring.push('a'), None);
        assert_eq!(ring.push('b'), None);
        assert_eq!(ring.push('c'), Some('a'));
        assert_eq!(ring.push('d'), Some('b'));
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut ring = RingBuffer::new(2);
        ring.push(1);
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = RingBuffer::<u8>::new(0);
    }
}
