//! Hierarchical timed spans: *where the time went*, not just what
//! happened.
//!
//! A span is a named interval on a monotonic clock. Spans nest through
//! a thread-local stack — opening a span while another is open makes it
//! a child — and every open/close pair is emitted to the [`Sink`] as
//! [`Event::SpanStart`] / [`Event::SpanEnd`], so any sink (memory,
//! JSONL, Chrome trace) sees a complete, balanced, properly nested
//! timeline per thread.
//!
//! # The zero-cost contract, extended
//!
//! [`span`] checks [`Sink::enabled`] first: with a `NullSink` the guard
//! is inert — no clock read, no id allocation, no stack push, no event.
//! The parity suite pins that an instrumented run over a `NullSink`
//! stays bit-identical and allocation-identical to the uninstrumented
//! one.
//!
//! # Clock and identity
//!
//! Timestamps are nanoseconds on a process-wide monotonic epoch (the
//! first clock read; `u64` nanoseconds overflow after ~584 years). Span
//! ids come from one process-wide atomic so they are unique across
//! threads; each OS thread draws a *lane* id once, which becomes the
//! `tid` of Chrome-trace output, so the MPC's parallel gradient workers
//! render as separate timeline rows.
//!
//! # Drop order
//!
//! Guards close on drop. Dropping guards out of order (an outer guard
//! before an inner one it scopes) closes the abandoned inner spans
//! first, innermost first, so the emitted stream is *always* balanced
//! and properly nested per lane no matter what the caller does.
//! Guards are `!Send`: a span must close on the thread that opened it.
//!
//! ```
//! use otem_telemetry::{span, MemorySink};
//!
//! let sink = MemorySink::new();
//! {
//!     let _solve = span(&sink, "mpc_solve");
//!     let _grad = span(&sink, "gradient");
//! } // both close here, "gradient" first
//! assert_eq!(sink.count_kind("span_start"), 2);
//! assert_eq!(sink.count_kind("span_end"), 2);
//! ```

use crate::event::Event;
use crate::sink::Sink;
use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// The process-wide monotonic epoch: set on the first clock read.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Process-wide span id allocator. 0 is reserved as "no parent".
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Process-wide lane (timeline row) allocator.
static NEXT_LANE: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Each OS thread draws its lane once, on first use.
    static LANE: u64 = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
    /// The open spans of this thread, outermost first.
    static STACK: RefCell<Vec<OpenSpan>> = const { RefCell::new(Vec::new()) };
}

/// One open span on a thread's stack.
struct OpenSpan {
    id: u64,
    name: &'static str,
    start_ns: u64,
}

/// Nanoseconds since the process-wide monotonic epoch.
pub(crate) fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// This thread's lane id (the `tid` of Chrome-trace output).
pub(crate) fn lane() -> u64 {
    LANE.with(|l| *l)
}

/// A named span definition — a `const`-constructible handle that can be
/// entered many times.
///
/// ```
/// use otem_telemetry::{MemorySink, Span};
///
/// const SOLVE: Span = Span::new("mpc_solve");
/// let sink = MemorySink::new();
/// let guard = SOLVE.enter(&sink);
/// guard.close();
/// assert_eq!(sink.count_kind("span_end"), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    name: &'static str,
}

impl Span {
    /// A span definition with the given stable snake_case name.
    pub const fn new(name: &'static str) -> Self {
        Self { name }
    }

    /// The span's name.
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// Opens this span on `sink` (see [`span`]).
    pub fn enter<'a>(&self, sink: &'a dyn Sink) -> SpanGuard<'a> {
        span(sink, self.name)
    }
}

/// Opens a named span: records [`Event::SpanStart`] (parented to the
/// innermost span already open on this thread) and returns a guard that
/// records [`Event::SpanEnd`] on drop.
///
/// When `sink` is disabled ([`Sink::enabled`] is `false`) the returned
/// guard is inert: no clock read, no id, no stack traffic, no events —
/// the zero-cost path for `NullSink`.
pub fn span<'a>(sink: &'a dyn Sink, name: &'static str) -> SpanGuard<'a> {
    if !sink.enabled() {
        return SpanGuard {
            sink: None,
            id: 0,
            _not_send: PhantomData,
        };
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let t_ns = now_ns();
    let parent = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().map_or(0, |open| open.id);
        s.push(OpenSpan {
            id,
            name,
            start_ns: t_ns,
        });
        parent
    });
    sink.record(Event::SpanStart {
        id,
        parent,
        name,
        lane: lane(),
        t_ns,
    });
    SpanGuard {
        sink: Some(sink),
        id,
        _not_send: PhantomData,
    }
}

/// RAII guard for an open span: records [`Event::SpanEnd`] when
/// dropped.
///
/// `!Send` by construction — a span closes on the thread that opened
/// it, which is what keeps per-lane streams balanced.
pub struct SpanGuard<'a> {
    /// `None` for the inert (disabled-sink) guard.
    sink: Option<&'a dyn Sink>,
    id: u64,
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard<'_> {
    /// The span id carried by this guard (0 for an inert guard).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// `true` when this guard actually tracks an open span (the sink
    /// was enabled at open time).
    pub fn is_active(&self) -> bool {
        self.sink.is_some()
    }

    /// Closes the span now (equivalent to dropping the guard; reads
    /// better at call sites that end a phase mid-function).
    pub fn close(self) {}
}

impl std::fmt::Debug for SpanGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("id", &self.id)
            .field("active", &self.sink.is_some())
            .finish()
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(sink) = self.sink else { return };
        let id = self.id;
        // Pop from the top of the stack down to (and including) our own
        // entry, emitting an End for each — abandoned inner spans close
        // innermost first, so the stream stays balanced and nested even
        // under out-of-order drops. If our id is gone an outer guard
        // already closed us: nothing to do. Events are recorded outside
        // the RefCell borrow so a sink can never re-enter the stack
        // mid-mutation.
        loop {
            let popped = STACK.with(|s| {
                let mut s = s.borrow_mut();
                if s.iter().any(|open| open.id == id) {
                    s.pop()
                } else {
                    None
                }
            });
            let Some(open) = popped else { break };
            let t_ns = now_ns();
            sink.record(Event::SpanEnd {
                id: open.id,
                name: open.name,
                lane: lane(),
                t_ns,
                dur_ns: t_ns.saturating_sub(open.start_ns),
            });
            if open.id == id {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{MemorySink, NullSink};

    fn spans_of(sink: &MemorySink) -> Vec<Event> {
        sink.events()
            .into_iter()
            .filter(|e| matches!(e, Event::SpanStart { .. } | Event::SpanEnd { .. }))
            .collect()
    }

    #[test]
    fn nested_spans_parent_and_balance() {
        let sink = MemorySink::new();
        {
            let outer = span(&sink, "outer");
            assert!(outer.is_active());
            let inner = span(&sink, "inner");
            match sink.events()[1] {
                Event::SpanStart { parent, .. } => assert_eq!(parent, outer.id()),
                ref other => panic!("expected SpanStart, got {other:?}"),
            }
            drop(inner);
            drop(outer);
        }
        let events = spans_of(&sink);
        assert_eq!(events.len(), 4);
        // inner closes before outer.
        match (&events[2], &events[3]) {
            (Event::SpanEnd { name: a, .. }, Event::SpanEnd { name: b, .. }) => {
                assert_eq!(*a, "inner");
                assert_eq!(*b, "outer");
            }
            other => panic!("expected two SpanEnds, got {other:?}"),
        }
    }

    #[test]
    fn out_of_order_drop_closes_abandoned_children_first() {
        let sink = MemorySink::new();
        let outer = span(&sink, "outer");
        let inner = span(&sink, "inner");
        drop(outer); // closes inner, then outer
        let events = spans_of(&sink);
        assert_eq!(events.len(), 4);
        match (&events[2], &events[3]) {
            (Event::SpanEnd { name: a, .. }, Event::SpanEnd { name: b, .. }) => {
                assert_eq!(*a, "inner");
                assert_eq!(*b, "outer");
            }
            other => panic!("expected two SpanEnds, got {other:?}"),
        }
        drop(inner); // already closed: must be a no-op
        assert_eq!(spans_of(&sink).len(), 4);
    }

    #[test]
    fn disabled_sink_yields_inert_guard() {
        let guard = span(&NullSink, "anything");
        assert!(!guard.is_active());
        assert_eq!(guard.id(), 0);
        drop(guard);
        // And the thread-local stack saw nothing: a following real span
        // on an enabled sink is a root.
        let sink = MemorySink::new();
        let g = span(&sink, "root");
        match sink.events()[0] {
            Event::SpanStart { parent, .. } => assert_eq!(parent, 0),
            ref other => panic!("expected SpanStart, got {other:?}"),
        }
        g.close();
    }

    #[test]
    fn durations_are_monotone_and_end_after_start() {
        let sink = MemorySink::new();
        let g = span(&sink, "timed");
        std::thread::sleep(std::time::Duration::from_millis(1));
        drop(g);
        let events = spans_of(&sink);
        match (&events[0], &events[1]) {
            (
                Event::SpanStart {
                    t_ns: t0, id: i0, ..
                },
                Event::SpanEnd {
                    t_ns: t1,
                    dur_ns,
                    id: i1,
                    ..
                },
            ) => {
                assert_eq!(i0, i1);
                assert!(t1 >= t0);
                assert_eq!(*dur_ns, t1 - t0);
                assert!(*dur_ns >= 1_000_000, "slept 1ms, got {dur_ns}ns");
            }
            other => panic!("expected Start/End, got {other:?}"),
        }
    }

    #[test]
    fn lanes_are_distinct_across_threads() {
        let sink = MemorySink::new();
        let here = {
            let g = span(&sink, "main");
            let id = g.id();
            drop(g);
            id
        };
        std::thread::scope(|scope| {
            scope.spawn(|| {
                span(&sink, "worker").close();
            });
        });
        let lanes: Vec<u64> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::SpanStart { lane, .. } => Some(*lane),
                _ => None,
            })
            .collect();
        assert_eq!(lanes.len(), 2);
        assert_ne!(lanes[0], lanes[1], "threads must get distinct lanes");
        assert!(here > 0);
    }

    #[test]
    fn const_span_definitions_reenter() {
        const PHASE: Span = Span::new("phase");
        assert_eq!(PHASE.name(), "phase");
        let sink = MemorySink::new();
        PHASE.enter(&sink).close();
        PHASE.enter(&sink).close();
        assert_eq!(sink.count_kind("span_start"), 2);
        assert_eq!(sink.count_kind("span_end"), 2);
    }
}
