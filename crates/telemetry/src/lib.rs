//! Structured telemetry for the OTEM MPC/solver/plant stack.
//!
//! The paper's whole evaluation is a story told through per-step signals
//! — battery temperature, C-rate, cooling duty, solver effort — and the
//! production north star needs those signals observable without
//! re-deriving them from record dumps. This crate is the instrumentation
//! layer: **dependency-free**, allocation-free on the disabled path, and
//! strictly observational (a sink can never perturb the physics it
//! watches).
//!
//! # Pieces
//!
//! * [`Event`] — the typed event taxonomy: solver iterations, gradient
//!   evaluations, workspace-pool hits/misses, cooling toggles,
//!   ultracapacitor saturation, bound clamps, and completed simulation
//!   steps. Every variant is `Copy` so emission never allocates.
//! * [`Sink`] — where events go. Implementations:
//!   [`NullSink`] (the default: every record is a no-op, the instrumented
//!   code path is bit-identical to an uninstrumented run),
//!   [`MemorySink`] (bounded ring buffer for tests and in-process
//!   inspection) and [`JsonlSink`] (streaming JSON-lines writer for
//!   `results/`).
//! * [`span`] / [`Span`] / [`SpanGuard`] — hierarchical timed spans on
//!   a monotonic clock: *where the time went* inside an MPC solve,
//!   nested via a thread-local stack and closed by RAII. Consumed
//!   through [`Event::SpanStart`] / [`Event::SpanEnd`] by any sink; the
//!   [`ChromeTraceSink`] turns them into a `chrome://tracing` /
//!   Perfetto timeline with one row per worker thread.
//! * Metric primitives — [`Counter`], [`Gauge`] and fixed-bucket
//!   [`Histogram`] (with interpolated [`Histogram::quantile`]), all
//!   interior-mutable so they can be shared across the solver's
//!   gradient worker threads.
//! * [`RingBuffer`] — the bounded FIFO behind [`MemorySink`], exposed
//!   for reuse.
//! * [`MetricsRegistry`] — named counter/gauge/histogram *families*
//!   with label sets, commutative snapshots, and hand-rolled
//!   Prometheus text exposition (validated by the parser in
//!   [`promparse`]).
//! * [`request_scope`] / [`current_request_id`] — the correlation id
//!   that joins telemetry back to the serving-layer request that
//!   caused it.
//! * [`FlightRecorder`] — an always-on bounded ring of recent events
//!   that freezes itself the moment a containment event
//!   ([`Event::PanicCaught`], [`Event::FallbackEngaged`]) flows
//!   through it, yielding a JSONL post-mortem.
//!
//! # The zero-cost contract
//!
//! Instrumented hot paths take `&dyn Sink` and call
//! [`Sink::record`] unconditionally. With [`NullSink`] that is one
//! virtual call on a few `Copy` words — no allocation, no branch on the
//! caller's side, and no effect on any computed value. The golden-trace
//! and parity suites in the workspace pin this contract: a `NullSink`
//! run must be `PartialEq`-identical to an uninstrumented run.
//!
//! # Example
//!
//! ```
//! use otem_telemetry::{Event, MemorySink, Sink};
//!
//! let sink = MemorySink::with_capacity(16);
//! sink.record(Event::PoolMiss);
//! sink.record(Event::SolverIteration {
//!     iteration: 0,
//!     value: 12.5,
//!     residual: 1e-3,
//!     step: 0.5,
//! });
//! assert_eq!(sink.len(), 2);
//! assert_eq!(sink.count_kind("solver_iteration"), 1);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod context;
mod event;
mod flight;
mod metrics;
pub mod promparse;
mod registry;
mod ring;
mod sink;
mod span;

pub use context::{current_request_id, request_scope, RequestScope};
pub use event::{write_json_string, Event};
pub use flight::{FlightDump, FlightEntry, FlightRecorder};
pub use metrics::{Counter, Gauge, Histogram};
pub use registry::{FamilySnapshot, MetricKind, MetricValue, MetricsRegistry, RegistrySnapshot};
pub use ring::RingBuffer;
pub use sink::{ChromeTraceSink, JsonlSink, MemorySink, NullSink, Sink};
pub use span::{span, Span, SpanGuard};
