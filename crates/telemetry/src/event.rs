//! The typed event taxonomy emitted by the instrumented stack.

use std::fmt::Write as _;

/// One telemetry event.
///
/// Every variant is `Copy` and carries only plain numbers, so
/// constructing and recording an event never touches the allocator —
/// the precondition for instrumenting the MPC hot path.
///
/// Temperatures are in kelvin, powers in watts, and state-of-charge /
/// state-of-energy as fractions in `[0, 1]`, matching the unit
/// conventions of the component crates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// One outer iteration of a solver ([`ProjectedGradient`] /
    /// `Lbfgs`-style): current objective value, convergence residual
    /// (projected-gradient or gradient infinity norm) and the step
    /// length about to be tried.
    ///
    /// [`ProjectedGradient`]: https://docs.rs/otem-solver
    SolverIteration {
        /// Zero-based outer-iteration index within one solve.
        iteration: u64,
        /// Objective value at the current iterate.
        value: f64,
        /// Convergence residual (infinity norm the solver converges on).
        residual: f64,
        /// Step length entering this iteration's line search.
        step: f64,
    },
    /// One full gradient evaluation (the MPC's dominant cost: `4·n`
    /// plant rollouts for an `n`-block horizon).
    GradientEval {
        /// Problem dimension (gradient coordinates evaluated).
        dim: u64,
        /// Worker threads the evaluation fanned out across (1 = serial).
        threads: u64,
    },
    /// One MPC solve finished: how it ended and how many outer
    /// iterations it spent. The per-solve roll-up behind the anytime
    /// contract — outcome distributions (`converged` /
    /// `budget_exhausted` / `deadline_reached` / …) aggregate straight
    /// off the event stream.
    SolveOutcome {
        /// Stable snake_case outcome name (`SolverOutcome::name()`).
        outcome: &'static str,
        /// Stable snake_case gradient-mode name (`GradientMode::
        /// name()`: `serial` / `parallel` / `adjoint` /
        /// `gauss_newton`) — the `mode` label of the
        /// `otem_solve_outcome_total` metric family.
        mode: &'static str,
        /// Outer iterations actually performed.
        iterations: u64,
    },
    /// A rollout workspace was served from the pool (steady state: no
    /// plant clone, no allocation).
    PoolHit,
    /// The pool was empty and a workspace was built by cloning the
    /// plant (cold start or a new concurrent worker).
    PoolMiss,
    /// The cooling loop switched on or off.
    CoolingToggle {
        /// `true` when the loop switched on.
        on: bool,
        /// Battery temperature at the toggle (K).
        battery_temp_k: f64,
    },
    /// The ultracapacitor path hit a limit: the commanded bus power
    /// reached the C7 bound, or the bank could not serve the request.
    UcapSaturated {
        /// Commanded (or requested) ultracapacitor bus power (W).
        commanded_w: f64,
        /// The applicable limit (W).
        limit_w: f64,
    },
    /// A decision variable ended on (or beyond) its box bound and was
    /// pinned there when the move was extracted — active-constraint
    /// telemetry for the MPC.
    BoundClamp {
        /// Index of the decision variable in the solver's layout.
        index: u64,
        /// Raw value before pinning.
        raw: f64,
        /// The bound it was pinned to.
        bound: f64,
    },
    /// A scheduled fault from a fault plan is active this step (one
    /// event per active fault per step, so campaigns are fully
    /// reconstructible from the event stream).
    FaultInjected {
        /// Zero-based step index along the route.
        step: u64,
        /// Stable snake_case fault name (e.g. `"forecast_nan"`,
        /// `"pump_stuck"`).
        fault: &'static str,
    },
    /// The supervisor rejected a controller decision (or the post-step
    /// state it produced) as unusable.
    DecisionRejected {
        /// Zero-based step index along the route.
        step: u64,
        /// Stable snake_case rejection predicate that fired (e.g.
        /// `"non_finite_cost"`, `"soc_out_of_range"`).
        reason: &'static str,
    },
    /// The supervisor disarmed the MPC and switched the plant to the
    /// rule-based fallback policy.
    FallbackEngaged {
        /// Zero-based step index along the route.
        step: u64,
        /// Consecutive healthy steps required before the MPC is
        /// re-armed (grows with exponential backoff on repeated
        /// failures).
        backoff_steps: u64,
    },
    /// The supervisor re-armed the MPC after enough consecutive healthy
    /// fallback steps.
    MpcRearmed {
        /// Zero-based step index along the route.
        step: u64,
        /// Healthy fallback steps observed before re-arming.
        healthy_steps: u64,
    },
    /// A hierarchical timed span opened (see the crate's span API:
    /// [`span`](crate::span) / [`SpanGuard`](crate::SpanGuard)).
    ///
    /// Timestamps are nanoseconds on the process-wide monotonic epoch;
    /// `lane` identifies the OS thread (one Chrome-trace timeline row
    /// per lane) and `parent` is the id of the enclosing span on the
    /// same lane, or `0` for a root span.
    SpanStart {
        /// Process-unique span id (never `0`).
        id: u64,
        /// Id of the enclosing span on this lane (`0` = root).
        parent: u64,
        /// Stable snake_case span name (e.g. `"mpc_solve"`).
        name: &'static str,
        /// Lane (thread) the span opened on.
        lane: u64,
        /// Open time, nanoseconds since the monotonic epoch.
        t_ns: u64,
    },
    /// The matching close of a [`Event::SpanStart`]. Per lane, ends are
    /// emitted innermost-first, so the Start/End stream is always
    /// balanced and properly nested.
    SpanEnd {
        /// Id of the span that closed.
        id: u64,
        /// The span's name (repeated so consumers need not join on id).
        name: &'static str,
        /// Lane (thread) the span closed on — same as its open lane.
        lane: u64,
        /// Close time, nanoseconds since the monotonic epoch.
        t_ns: u64,
        /// `t_ns - start.t_ns` (saturating).
        dur_ns: u64,
    },
    /// The serving layer refused a request because its bounded worker
    /// queue was full (load shedding): the client was answered `503`
    /// immediately instead of queueing unboundedly.
    RequestShed {
        /// Jobs sitting in the bounded queue when the request arrived.
        queued: u64,
        /// The back-off hint sent to the client.
        retry_after_ms: u64,
    },
    /// A connection exceeded a socket read/write deadline (slow-loris,
    /// trickle body, or a client that stopped reading) and was cut off.
    RequestTimeout {
        /// Wall-clock milliseconds the request had been in flight when
        /// the deadline fired.
        after_ms: f64,
    },
    /// A panic was caught and contained instead of killing the process:
    /// either a request handler (the connection died, the server lives)
    /// or one vehicle inside a fleet campaign (the campaign completes
    /// with a structured error record for that vehicle).
    PanicCaught {
        /// Containment layer: `"request"` or `"vehicle"`.
        context: &'static str,
    },
    /// Graceful drain began: the server stopped accepting connections
    /// and is letting in-flight requests finish up to the drain
    /// deadline.
    DrainStarted {
        /// Requests being handled by workers when the drain started.
        in_flight: u64,
        /// Accepted-but-unstarted jobs still queued.
        queued: u64,
    },
    /// The serving layer dispatched a request to a worker: the moment
    /// a correlation id is minted. Every subsequent event recorded on
    /// behalf of this request joins back to it through the flight
    /// recorder's `request_id` stamp.
    RequestStarted {
        /// The id minted for this request (never `0`).
        request_id: u64,
        /// The route being served (e.g. `"/simulate"`).
        route: &'static str,
    },
    /// The fleet engine started one vehicle of a campaign on a worker
    /// thread, inside the request's correlation scope.
    VehicleStarted {
        /// The originating request id (`0` for in-process runs).
        request_id: u64,
        /// The vehicle's id within the campaign.
        vehicle: u64,
    },
    /// One lockstep batched evaluation ran: `lanes` independent
    /// rollouts (line-search candidates or fleet vehicles) advanced
    /// together through a batch sized for `width` lanes. `lanes <
    /// width` means a partially-full batch (ladder tail, drained or
    /// faulted fleet lanes) — the signal behind the
    /// `otem_rollout_batch_occupancy` histogram and the
    /// `otem_batched_rollouts_total` counter.
    BatchEvaluated {
        /// Lanes actually occupied in this evaluation.
        lanes: u64,
        /// The batch's configured lane capacity.
        width: u64,
    },
    /// One closed-loop simulation step completed (the per-step signal
    /// set behind the paper's Figs. 1, 6–9).
    StepCompleted {
        /// Zero-based step index along the route.
        step: u64,
        /// Requested load (W).
        load_w: f64,
        /// Power actually delivered to the bus (W).
        delivered_w: f64,
        /// Unserved load (W).
        shortfall_w: f64,
        /// Electric power drawn by the cooling system (W).
        cooling_w: f64,
        /// Battery temperature after the step (K).
        battery_temp_k: f64,
        /// Battery state of charge after the step.
        soc: f64,
        /// Ultracapacitor state of energy after the step.
        soe: f64,
    },
}

impl Event {
    /// Stable snake_case discriminant name (the `"event"` field of the
    /// JSONL encoding).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::SolverIteration { .. } => "solver_iteration",
            Event::GradientEval { .. } => "gradient_eval",
            Event::SolveOutcome { .. } => "solve_outcome",
            Event::PoolHit => "pool_hit",
            Event::PoolMiss => "pool_miss",
            Event::CoolingToggle { .. } => "cooling_toggle",
            Event::UcapSaturated { .. } => "ucap_saturated",
            Event::BoundClamp { .. } => "bound_clamp",
            Event::FaultInjected { .. } => "fault_injected",
            Event::DecisionRejected { .. } => "decision_rejected",
            Event::FallbackEngaged { .. } => "fallback_engaged",
            Event::MpcRearmed { .. } => "mpc_rearmed",
            Event::RequestShed { .. } => "request_shed",
            Event::RequestTimeout { .. } => "request_timeout",
            Event::PanicCaught { .. } => "panic_caught",
            Event::DrainStarted { .. } => "drain_started",
            Event::RequestStarted { .. } => "request_started",
            Event::VehicleStarted { .. } => "vehicle_started",
            Event::SpanStart { .. } => "span_start",
            Event::SpanEnd { .. } => "span_end",
            Event::BatchEvaluated { .. } => "batch_evaluated",
            Event::StepCompleted { .. } => "step_completed",
        }
    }

    /// Appends the event as one JSON object (no trailing newline) to
    /// `out`. Non-finite floats encode as `null` so every line stays
    /// valid JSON.
    pub fn write_json(&self, out: &mut String) {
        let _ = write!(out, "{{\"event\":\"{}\"", self.kind());
        match *self {
            Event::SolverIteration {
                iteration,
                value,
                residual,
                step,
            } => {
                let _ = write!(out, ",\"iteration\":{iteration}");
                field(out, "value", value);
                field(out, "residual", residual);
                field(out, "step", step);
            }
            Event::GradientEval { dim, threads } => {
                let _ = write!(out, ",\"dim\":{dim},\"threads\":{threads}");
            }
            Event::SolveOutcome {
                outcome,
                mode,
                iterations,
            } => {
                str_field(out, "outcome", outcome);
                str_field(out, "mode", mode);
                let _ = write!(out, ",\"iterations\":{iterations}");
            }
            Event::PoolHit | Event::PoolMiss => {}
            Event::CoolingToggle { on, battery_temp_k } => {
                let _ = write!(out, ",\"on\":{on}");
                field(out, "battery_temp_k", battery_temp_k);
            }
            Event::UcapSaturated {
                commanded_w,
                limit_w,
            } => {
                field(out, "commanded_w", commanded_w);
                field(out, "limit_w", limit_w);
            }
            Event::BoundClamp { index, raw, bound } => {
                let _ = write!(out, ",\"index\":{index}");
                field(out, "raw", raw);
                field(out, "bound", bound);
            }
            Event::FaultInjected { step, fault } => {
                let _ = write!(out, ",\"step\":{step}");
                str_field(out, "fault", fault);
            }
            Event::DecisionRejected { step, reason } => {
                let _ = write!(out, ",\"step\":{step}");
                str_field(out, "reason", reason);
            }
            Event::FallbackEngaged {
                step,
                backoff_steps,
            } => {
                let _ = write!(out, ",\"step\":{step},\"backoff_steps\":{backoff_steps}");
            }
            Event::MpcRearmed {
                step,
                healthy_steps,
            } => {
                let _ = write!(out, ",\"step\":{step},\"healthy_steps\":{healthy_steps}");
            }
            Event::RequestShed {
                queued,
                retry_after_ms,
            } => {
                let _ = write!(
                    out,
                    ",\"queued\":{queued},\"retry_after_ms\":{retry_after_ms}"
                );
            }
            Event::RequestTimeout { after_ms } => {
                field(out, "after_ms", after_ms);
            }
            Event::PanicCaught { context } => {
                str_field(out, "context", context);
            }
            Event::DrainStarted { in_flight, queued } => {
                let _ = write!(out, ",\"in_flight\":{in_flight},\"queued\":{queued}");
            }
            Event::RequestStarted { request_id, route } => {
                let _ = write!(out, ",\"request_id\":{request_id}");
                str_field(out, "route", route);
            }
            Event::VehicleStarted {
                request_id,
                vehicle,
            } => {
                let _ = write!(out, ",\"request_id\":{request_id},\"vehicle\":{vehicle}");
            }
            Event::SpanStart {
                id,
                parent,
                name,
                lane,
                t_ns,
            } => {
                let _ = write!(out, ",\"id\":{id},\"parent\":{parent}");
                str_field(out, "name", name);
                let _ = write!(out, ",\"lane\":{lane},\"t_ns\":{t_ns}");
            }
            Event::SpanEnd {
                id,
                name,
                lane,
                t_ns,
                dur_ns,
            } => {
                let _ = write!(out, ",\"id\":{id}");
                str_field(out, "name", name);
                let _ = write!(out, ",\"lane\":{lane},\"t_ns\":{t_ns},\"dur_ns\":{dur_ns}");
            }
            Event::BatchEvaluated { lanes, width } => {
                let _ = write!(out, ",\"lanes\":{lanes},\"width\":{width}");
            }
            Event::StepCompleted {
                step,
                load_w,
                delivered_w,
                shortfall_w,
                cooling_w,
                battery_temp_k,
                soc,
                soe,
            } => {
                let _ = write!(out, ",\"step\":{step}");
                field(out, "load_w", load_w);
                field(out, "delivered_w", delivered_w);
                field(out, "shortfall_w", shortfall_w);
                field(out, "cooling_w", cooling_w);
                field(out, "battery_temp_k", battery_temp_k);
                field(out, "soc", soc);
                field(out, "soe", soe);
            }
        }
        out.push('}');
    }

    /// The event as one JSON line (convenience over
    /// [`Event::write_json`]).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        self.write_json(&mut s);
        s
    }
}

/// Writes `,"name":value` with non-finite values encoded as `null`.
fn field(out: &mut String, name: &str, value: f64) {
    if value.is_finite() {
        let _ = write!(out, ",\"{name}\":{value}");
    } else {
        let _ = write!(out, ",\"{name}\":null");
    }
}

/// Writes `,"name":"value"` with the value escaped per the JSON spec.
fn str_field(out: &mut String, name: &str, value: &str) {
    let _ = write!(out, ",\"{name}\":");
    write_json_string(out, value);
}

/// Appends `s` as a JSON string literal (quotes included): `"` and `\`
/// are backslash-escaped and control characters use `\n`/`\r`/`\t` or
/// `\u00XX`, so the output is valid JSON for *any* input string —
/// including panic messages and client-supplied text embedded in
/// serving-layer error records.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable() {
        assert_eq!(Event::PoolHit.kind(), "pool_hit");
        assert_eq!(Event::PoolMiss.kind(), "pool_miss");
        assert_eq!(
            Event::StepCompleted {
                step: 0,
                load_w: 0.0,
                delivered_w: 0.0,
                shortfall_w: 0.0,
                cooling_w: 0.0,
                battery_temp_k: 0.0,
                soc: 0.0,
                soe: 0.0,
            }
            .kind(),
            "step_completed"
        );
    }

    #[test]
    fn json_encoding_is_one_object_per_event() {
        let e = Event::SolverIteration {
            iteration: 3,
            value: 12.5,
            residual: 1e-3,
            step: 0.5,
        };
        assert_eq!(
            e.to_json(),
            "{\"event\":\"solver_iteration\",\"iteration\":3,\"value\":12.5,\
             \"residual\":0.001,\"step\":0.5}"
        );
        assert_eq!(Event::PoolHit.to_json(), "{\"event\":\"pool_hit\"}");
    }

    #[test]
    fn solve_outcome_encodes_name_mode_and_iterations() {
        let e = Event::SolveOutcome {
            outcome: "deadline_reached",
            mode: "adjoint",
            iterations: 7,
        };
        assert_eq!(e.kind(), "solve_outcome");
        assert_eq!(
            e.to_json(),
            "{\"event\":\"solve_outcome\",\"outcome\":\"deadline_reached\",\
             \"mode\":\"adjoint\",\"iterations\":7}"
        );
    }

    #[test]
    fn correlation_events_encode_request_ids() {
        let e = Event::RequestStarted {
            request_id: 12,
            route: "/simulate",
        };
        assert_eq!(e.kind(), "request_started");
        assert_eq!(
            e.to_json(),
            "{\"event\":\"request_started\",\"request_id\":12,\"route\":\"/simulate\"}"
        );
        let e = Event::VehicleStarted {
            request_id: 12,
            vehicle: 4,
        };
        assert_eq!(e.kind(), "vehicle_started");
        assert_eq!(
            e.to_json(),
            "{\"event\":\"vehicle_started\",\"request_id\":12,\"vehicle\":4}"
        );
    }

    #[test]
    fn non_finite_floats_encode_as_null() {
        let e = Event::GradientEval { dim: 4, threads: 2 };
        assert_eq!(
            e.to_json(),
            "{\"event\":\"gradient_eval\",\"dim\":4,\"threads\":2}"
        );
        let bad = Event::CoolingToggle {
            on: true,
            battery_temp_k: f64::NAN,
        };
        assert_eq!(
            bad.to_json(),
            "{\"event\":\"cooling_toggle\",\"on\":true,\"battery_temp_k\":null}"
        );
    }

    #[test]
    fn degradation_events_encode_kind_and_fields() {
        assert_eq!(
            Event::FaultInjected {
                step: 42,
                fault: "forecast_nan",
            }
            .to_json(),
            "{\"event\":\"fault_injected\",\"step\":42,\"fault\":\"forecast_nan\"}"
        );
        assert_eq!(
            Event::DecisionRejected {
                step: 43,
                reason: "non_finite_cost",
            }
            .to_json(),
            "{\"event\":\"decision_rejected\",\"step\":43,\"reason\":\"non_finite_cost\"}"
        );
        assert_eq!(
            Event::FallbackEngaged {
                step: 43,
                backoff_steps: 5,
            }
            .to_json(),
            "{\"event\":\"fallback_engaged\",\"step\":43,\"backoff_steps\":5}"
        );
        assert_eq!(
            Event::MpcRearmed {
                step: 48,
                healthy_steps: 5,
            }
            .to_json(),
            "{\"event\":\"mpc_rearmed\",\"step\":48,\"healthy_steps\":5}"
        );
        assert_eq!(
            Event::FaultInjected {
                step: 0,
                fault: "pump_stuck",
            }
            .kind(),
            "fault_injected"
        );
        assert_eq!(
            Event::DecisionRejected {
                step: 0,
                reason: "x",
            }
            .kind(),
            "decision_rejected"
        );
        assert_eq!(
            Event::FallbackEngaged {
                step: 0,
                backoff_steps: 0,
            }
            .kind(),
            "fallback_engaged"
        );
        assert_eq!(
            Event::MpcRearmed {
                step: 0,
                healthy_steps: 0,
            }
            .kind(),
            "mpc_rearmed"
        );
    }

    #[test]
    fn serving_layer_events_encode_kind_and_fields() {
        assert_eq!(
            Event::RequestShed {
                queued: 64,
                retry_after_ms: 100,
            }
            .to_json(),
            "{\"event\":\"request_shed\",\"queued\":64,\"retry_after_ms\":100}"
        );
        assert_eq!(
            Event::RequestTimeout { after_ms: 250.5 }.to_json(),
            "{\"event\":\"request_timeout\",\"after_ms\":250.5}"
        );
        assert_eq!(
            Event::PanicCaught { context: "vehicle" }.to_json(),
            "{\"event\":\"panic_caught\",\"context\":\"vehicle\"}"
        );
        assert_eq!(
            Event::DrainStarted {
                in_flight: 3,
                queued: 2,
            }
            .to_json(),
            "{\"event\":\"drain_started\",\"in_flight\":3,\"queued\":2}"
        );
        assert_eq!(
            Event::RequestShed {
                queued: 0,
                retry_after_ms: 0
            }
            .kind(),
            "request_shed"
        );
        assert_eq!(
            Event::RequestTimeout { after_ms: 0.0 }.kind(),
            "request_timeout"
        );
        assert_eq!(
            Event::PanicCaught { context: "request" }.kind(),
            "panic_caught"
        );
        assert_eq!(
            Event::DrainStarted {
                in_flight: 0,
                queued: 0
            }
            .kind(),
            "drain_started"
        );
    }

    #[test]
    fn span_events_encode_all_fields() {
        let start = Event::SpanStart {
            id: 7,
            parent: 3,
            name: "mpc_solve",
            lane: 2,
            t_ns: 1_500,
        };
        assert_eq!(start.kind(), "span_start");
        assert_eq!(
            start.to_json(),
            "{\"event\":\"span_start\",\"id\":7,\"parent\":3,\
             \"name\":\"mpc_solve\",\"lane\":2,\"t_ns\":1500}"
        );
        let end = Event::SpanEnd {
            id: 7,
            name: "mpc_solve",
            lane: 2,
            t_ns: 2_500,
            dur_ns: 1_000,
        };
        assert_eq!(end.kind(), "span_end");
        assert_eq!(
            end.to_json(),
            "{\"event\":\"span_end\",\"id\":7,\"name\":\"mpc_solve\",\
             \"lane\":2,\"t_ns\":2500,\"dur_ns\":1000}"
        );
    }

    #[test]
    fn string_fields_are_escaped_per_json_spec() {
        let e = Event::DecisionRejected {
            step: 1,
            reason: "quote \" back \\ slash",
        };
        assert_eq!(
            e.to_json(),
            "{\"event\":\"decision_rejected\",\"step\":1,\
             \"reason\":\"quote \\\" back \\\\ slash\"}"
        );
        let e = Event::FaultInjected {
            step: 2,
            fault: "tab\there\nnewline\u{1}ctl",
        };
        assert_eq!(
            e.to_json(),
            "{\"event\":\"fault_injected\",\"step\":2,\
             \"fault\":\"tab\\there\\nnewline\\u0001ctl\"}"
        );
    }

    #[test]
    fn json_string_escaper_covers_every_control_char() {
        for byte in 0u32..0x20 {
            let c = char::from_u32(byte).unwrap();
            let mut out = String::new();
            write_json_string(&mut out, &c.to_string());
            assert!(
                out.starts_with('"') && out.ends_with('"') && out.contains('\\'),
                "control char {byte:#x} must be escaped, got {out:?}"
            );
        }
    }

    #[test]
    fn batch_evaluated_encodes_lanes_and_width() {
        let e = Event::BatchEvaluated { lanes: 3, width: 8 };
        assert_eq!(e.kind(), "batch_evaluated");
        assert_eq!(
            e.to_json(),
            "{\"event\":\"batch_evaluated\",\"lanes\":3,\"width\":8}"
        );
    }

    #[test]
    fn step_completed_encodes_every_column() {
        let e = Event::StepCompleted {
            step: 7,
            load_w: 20_000.0,
            delivered_w: 19_950.0,
            shortfall_w: 50.0,
            cooling_w: 120.0,
            battery_temp_k: 305.15,
            soc: 0.93,
            soe: 0.41,
        };
        let json = e.to_json();
        for key in [
            "\"step\":7",
            "\"load_w\":20000",
            "\"delivered_w\":19950",
            "\"shortfall_w\":50",
            "\"cooling_w\":120",
            "\"battery_temp_k\":305.15",
            "\"soc\":0.93",
            "\"soe\":0.41",
        ] {
            assert!(json.contains(key), "{json} missing {key}");
        }
    }
}
