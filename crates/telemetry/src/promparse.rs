//! A small hand-rolled parser for the Prometheus text exposition
//! format (v0.0.4) — the *other half* of [`crate::RegistrySnapshot::
//! render_prometheus`].
//!
//! It exists so the exposition can be verified mechanically instead of
//! by substring matching: the property suite round-trips rendered
//! snapshots through it, and the `fleet_bench --obs-smoke` CI gate
//! scrapes a live `/metrics` and runs [`validate_exposition`] over the
//! bytes on the wire. It is a *validator*, not a general scrape
//! client: unknown syntax is an error, never skipped.

use std::collections::BTreeMap;

/// Label pairs as they appear on a sample line, values unescaped.
pub type LabelPairs = Vec<(String, String)>;

/// One parsed sample line: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSample {
    /// The sample's full metric name (including any `_bucket` /
    /// `_sum` / `_count` suffix).
    pub name: String,
    /// Label pairs in the order they appeared, values unescaped.
    pub labels: LabelPairs,
    /// The sample value (`NaN` / `+Inf` / `-Inf` spelled out in the
    /// wire format parse to the matching `f64`).
    pub value: f64,
}

impl ParsedSample {
    /// The value of label `name`, if present.
    pub fn label(&self, name: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One family: the `# HELP` / `# TYPE` headers plus every sample that
/// belongs to it (histogram `_bucket`/`_sum`/`_count` series fold into
/// their base family).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedFamily {
    /// Unescaped `# HELP` text, when present.
    pub help: Option<String>,
    /// The `# TYPE` keyword (`counter` / `gauge` / `histogram` / …),
    /// when present.
    pub kind: Option<String>,
    /// Samples in wire order.
    pub samples: Vec<ParsedSample>,
}

/// A parsed exposition: families keyed by base metric name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedExposition {
    /// Families keyed by base name (suffixes stripped for histograms).
    pub families: BTreeMap<String, ParsedFamily>,
}

impl ParsedExposition {
    /// The sample with exactly this name and label set (order
    /// insensitive), if present anywhere in the exposition.
    pub fn sample(&self, name: &str, labels: &[(&str, &str)]) -> Option<&ParsedSample> {
        let mut want: Vec<(&str, &str)> = labels.to_vec();
        want.sort();
        self.families.values().flat_map(|f| &f.samples).find(|s| {
            if s.name != name {
                return false;
            }
            let mut have: Vec<(&str, &str)> = s
                .labels
                .iter()
                .map(|(n, v)| (n.as_str(), v.as_str()))
                .collect();
            have.sort();
            have == want
        })
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parses a sample value (`NaN`, `+Inf`, `-Inf`, or a float literal).
fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "NaN" => Ok(f64::NAN),
        "+Inf" | "Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        other => other
            .parse::<f64>()
            .map_err(|_| format!("bad sample value {other:?}")),
    }
}

/// Unescapes `\\n` / `\\\\` in help text.
fn unescape_help(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Parses the `{label="value",...}` block; `rest` starts *after* the
/// opening `{`. Returns the pairs and the remainder after the closing
/// `}`.
fn parse_labels(rest: &str) -> Result<(LabelPairs, &str), String> {
    let mut labels = Vec::new();
    let mut rest = rest.trim_start();
    loop {
        if let Some(after) = rest.strip_prefix('}') {
            return Ok((labels, after));
        }
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=' near {rest:?}"))?;
        let name = rest[..eq].trim();
        if !valid_label_name(name) {
            return Err(format!("invalid label name {name:?}"));
        }
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("label {name:?} value is not quoted"))?;
        // Unescape the quoted value: \\ \" \n.
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let after_quote;
        loop {
            match chars.next() {
                Some((i, '"')) => {
                    after_quote = &rest[i + 1..];
                    break;
                }
                Some((_, '\\')) => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, other)) => {
                        return Err(format!("bad escape '\\{other}' in label {name:?}"))
                    }
                    None => return Err(format!("unterminated escape in label {name:?}")),
                },
                Some((_, c)) => value.push(c),
                None => return Err(format!("unterminated value for label {name:?}")),
            }
        }
        labels.push((name.to_owned(), value));
        rest = after_quote.trim_start();
        if let Some(after) = rest.strip_prefix(',') {
            rest = after.trim_start();
        }
    }
}

/// The base family name of a sample: `_bucket` / `_sum` / `_count`
/// suffixes fold into a declared histogram family when one exists.
fn family_of<'a>(name: &'a str, histograms: &BTreeMap<String, ParsedFamily>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if histograms
                .get(base)
                .is_some_and(|f| f.kind.as_deref() == Some("histogram"))
            {
                return base;
            }
        }
    }
    name
}

/// Parses a full exposition body.
///
/// # Errors
///
/// Returns a description of the first malformed line: bad metric or
/// label names, unquoted or unterminated label values, bad escapes,
/// unparsable sample values, or duplicate `# TYPE` declarations.
pub fn parse_exposition(text: &str) -> Result<ParsedExposition, String> {
    let mut exposition = ParsedExposition::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| format!("line {}: {msg}", lineno + 1);
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest
                .split_once(' ')
                .map(|(n, h)| (n, h.to_owned()))
                .unwrap_or((rest, String::new()));
            if !valid_metric_name(name) {
                return Err(err(format!("invalid metric name {name:?} in HELP")));
            }
            let family = exposition.families.entry(name.to_owned()).or_default();
            if family.help.is_some() {
                return Err(err(format!("duplicate HELP for {name:?}")));
            }
            family.help = Some(unescape_help(&help));
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or_else(|| err("TYPE line without a kind".to_owned()))?;
            if !valid_metric_name(name) {
                return Err(err(format!("invalid metric name {name:?} in TYPE")));
            }
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(err(format!("unknown metric kind {kind:?}")));
            }
            let family = exposition.families.entry(name.to_owned()).or_default();
            if family.kind.is_some() {
                return Err(err(format!("duplicate TYPE for {name:?}")));
            }
            family.kind = Some(kind.to_owned());
            continue;
        }
        if line.starts_with('#') {
            continue; // plain comment
        }
        // Sample line: name[{labels}] value
        let name_end = line
            .find(|c: char| c == '{' || c.is_ascii_whitespace())
            .unwrap_or(line.len());
        let name = &line[..name_end];
        if !valid_metric_name(name) {
            return Err(err(format!("invalid metric name {name:?}")));
        }
        let rest = &line[name_end..];
        let (labels, rest) = if let Some(after) = rest.strip_prefix('{') {
            parse_labels(after).map_err(&err)?
        } else {
            (Vec::new(), rest)
        };
        let value_str = rest.trim();
        if value_str.is_empty() {
            return Err(err(format!("sample {name:?} has no value")));
        }
        // A timestamp may follow the value; the renderer never emits
        // one, so reject it here to keep the validator strict.
        if value_str.split_ascii_whitespace().count() != 1 {
            return Err(err(format!("unexpected trailing fields after {name:?}")));
        }
        let value = parse_value(value_str).map_err(&err)?;
        let base = family_of(name, &exposition.families).to_owned();
        exposition
            .families
            .entry(base)
            .or_default()
            .samples
            .push(ParsedSample {
                name: name.to_owned(),
                labels,
                value,
            });
    }
    Ok(exposition)
}

/// Parses *and* validates an exposition:
///
/// * every sample belongs to a family with a `# TYPE` declaration;
/// * histogram `_bucket` series are cumulative (non-decreasing in
///   `le` order), end in an `le="+Inf"` bucket, and that bucket equals
///   the family's `_count` for the same label set.
///
/// Returns the parsed exposition on success — this is the check the
/// `fleet_bench --obs-smoke` CI gate runs against a live scrape.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn validate_exposition(text: &str) -> Result<ParsedExposition, String> {
    let exposition = parse_exposition(text)?;
    for (name, family) in &exposition.families {
        let Some(kind) = family.kind.as_deref() else {
            return Err(format!("family {name:?} has samples but no TYPE"));
        };
        if kind != "histogram" {
            continue;
        }
        // Group buckets by their non-`le` label signature.
        let bucket_name = format!("{name}_bucket");
        let count_name = format!("{name}_count");
        let mut groups: BTreeMap<LabelPairs, Vec<(f64, f64)>> = BTreeMap::new();
        for sample in &family.samples {
            if sample.name != bucket_name {
                continue;
            }
            let le = sample
                .label("le")
                .ok_or_else(|| format!("{bucket_name} sample without le"))?;
            let edge = parse_value(le)?;
            let mut key: Vec<(String, String)> = sample
                .labels
                .iter()
                .filter(|(n, _)| n != "le")
                .cloned()
                .collect();
            key.sort();
            groups.entry(key).or_default().push((edge, sample.value));
        }
        for (key, mut buckets) in groups {
            buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
            let monotone = buckets.windows(2).all(|w| w[0].1 <= w[1].1);
            if !monotone {
                return Err(format!("{bucket_name}{key:?} buckets are not cumulative"));
            }
            let Some(&(last_edge, last_count)) = buckets.last() else {
                continue;
            };
            if last_edge != f64::INFINITY {
                return Err(format!("{bucket_name}{key:?} missing le=\"+Inf\""));
            }
            let count = family
                .samples
                .iter()
                .find(|s| {
                    let mut have: Vec<(String, String)> = s.labels.clone();
                    have.sort();
                    s.name == count_name && have == key
                })
                .ok_or_else(|| format!("{count_name}{key:?} missing"))?;
            if count.value != last_count {
                return Err(format!(
                    "{bucket_name}{key:?}: +Inf bucket {} != count {}",
                    last_count, count.value
                ));
            }
        }
    }
    Ok(exposition)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# HELP otem_requests_total Total requests.
# TYPE otem_requests_total counter
otem_requests_total{route=\"/simulate\"} 5
# HELP otem_lat_seconds Latency.
# TYPE otem_lat_seconds histogram
otem_lat_seconds_bucket{route=\"/plan\",le=\"0.1\"} 1
otem_lat_seconds_bucket{route=\"/plan\",le=\"+Inf\"} 3
otem_lat_seconds_sum{route=\"/plan\"} 1.25
otem_lat_seconds_count{route=\"/plan\"} 3
";

    #[test]
    fn parses_families_samples_and_histogram_suffixes() {
        let parsed = validate_exposition(SAMPLE).expect("valid");
        assert_eq!(parsed.families.len(), 2);
        let requests = &parsed.families["otem_requests_total"];
        assert_eq!(requests.kind.as_deref(), Some("counter"));
        assert_eq!(requests.help.as_deref(), Some("Total requests."));
        assert_eq!(requests.samples[0].value, 5.0);
        assert_eq!(requests.samples[0].label("route"), Some("/simulate"));
        let lat = &parsed.families["otem_lat_seconds"];
        assert_eq!(lat.samples.len(), 4, "buckets + sum + count fold in");
        assert!(parsed
            .sample("otem_lat_seconds_count", &[("route", "/plan")])
            .is_some());
    }

    #[test]
    fn label_escapes_round_trip() {
        let text = "# TYPE m counter\nm{k=\"a\\\\b\\\"c\\nd\"} 1\n";
        let parsed = parse_exposition(text).expect("valid");
        assert_eq!(
            parsed.families["m"].samples[0].label("k"),
            Some("a\\b\"c\nd")
        );
    }

    #[test]
    fn non_cumulative_buckets_are_rejected() {
        let bad = "\
# TYPE h histogram
h_bucket{le=\"1\"} 5
h_bucket{le=\"+Inf\"} 3
h_sum 0
h_count 3
";
        let err = validate_exposition(bad).unwrap_err();
        assert!(err.contains("not cumulative"), "{err}");
    }

    #[test]
    fn missing_inf_bucket_is_rejected() {
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_count 1\nh_sum 1\n";
        let err = validate_exposition(bad).unwrap_err();
        assert!(err.contains("+Inf"), "{err}");
    }

    #[test]
    fn untyped_samples_are_rejected() {
        let err = validate_exposition("lonely 1\n").unwrap_err();
        assert!(err.contains("no TYPE"), "{err}");
    }

    #[test]
    fn inf_count_mismatch_is_rejected() {
        let bad = "\
# TYPE h histogram
h_bucket{le=\"+Inf\"} 3
h_sum 0
h_count 4
";
        let err = validate_exposition(bad).unwrap_err();
        assert!(err.contains("!= count"), "{err}");
    }

    #[test]
    fn special_values_parse() {
        let text = "# TYPE g gauge\ng{k=\"nan\"} NaN\ng{k=\"inf\"} +Inf\ng{k=\"neg\"} -Inf\n";
        let parsed = parse_exposition(text).expect("valid");
        let g = &parsed.families["g"];
        assert!(g.samples[0].value.is_nan());
        assert_eq!(g.samples[1].value, f64::INFINITY);
        assert_eq!(g.samples[2].value, f64::NEG_INFINITY);
    }

    #[test]
    fn malformed_lines_name_the_line() {
        let err = parse_exposition("# TYPE m counter\nm{k=unquoted} 1\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }
}
