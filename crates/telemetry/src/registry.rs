//! The unified metric registry: named counter/gauge/histogram
//! *families* with label sets, lock-free hot paths, commutative
//! snapshots, and hand-rolled Prometheus v0.0.4 text exposition.
//!
//! # Model
//!
//! A *family* is a metric name plus a fixed set of label **names**
//! (`otem_solve_outcome_total{mode,outcome}`); a *child* is one
//! combination of label **values** within a family. Children are the
//! existing atomic primitives ([`Counter`], [`Gauge`], [`Histogram`])
//! behind an `Arc`, so the hot path is exactly what it was before the
//! registry existed: one relaxed atomic op, no lock, no allocation.
//! The registry's mutex is touched only at registration/lookup time —
//! call sites resolve their handle once and cache the `Arc`.
//!
//! # Label-order independence
//!
//! Labels are supplied as `(name, value)` pairs and canonicalized by
//! sorting on the label name, so
//! `[("mode", "adjoint"), ("outcome", "converged")]` and
//! `[("outcome", "converged"), ("mode", "adjoint")]` resolve to the
//! same child and render identically. The property suite pins this.
//!
//! # Snapshot and merge
//!
//! [`MetricsRegistry::snapshot`] captures plain data
//! ([`RegistrySnapshot`]) that can be merged across worker threads or
//! processes: counters and histogram buckets add, gauges **sum** —
//! a deliberate choice that keeps the merge commutative and
//! associative (per-worker gauges are treated as additive
//! contributions, e.g. per-worker in-flight counts summing to the
//! fleet total). The bench bins fold merged snapshots into their
//! BENCH outputs; the server renders them at `/metrics`.

use crate::metrics::{Counter, Gauge, Histogram};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// What a family measures — fixed at first registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter (`_total` by convention).
    Counter,
    /// Last-value (or summed-contribution) gauge.
    Gauge,
    /// Fixed-bucket histogram with `_bucket`/`_sum`/`_count` series.
    Histogram,
}

impl MetricKind {
    /// The `# TYPE` keyword for this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One child handle inside a family.
#[derive(Debug, Clone)]
enum Child {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// One registered family: help text, kind, canonical label names, and
/// the children keyed by their label values (in label-name order).
#[derive(Debug)]
struct Family {
    help: String,
    kind: MetricKind,
    label_names: Vec<String>,
    /// Bucket edges all histogram children share (`None` otherwise).
    bounds: Option<Box<[f64]>>,
    children: BTreeMap<Vec<String>, Child>,
}

/// The registry: a mutexed map of families. See the module docs for
/// the model; the mutex is cold-path only.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: Mutex<BTreeMap<String, Family>>,
}

/// `true` iff `name` is a valid Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// `true` iff `name` is a valid Prometheus label name
/// (`[a-zA-Z_][a-zA-Z0-9_]*`).
fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Canonicalizes a label set: sorted by name, duplicate names rejected.
fn canonical_labels(labels: &[(&str, &str)]) -> (Vec<String>, Vec<String>) {
    let mut pairs: Vec<(&str, &str)> = labels.to_vec();
    pairs.sort_by(|a, b| a.0.cmp(b.0));
    for w in pairs.windows(2) {
        assert!(w[0].0 != w[1].0, "duplicate label name {:?}", w[0].0);
    }
    for (name, _) in &pairs {
        assert!(valid_label_name(name), "invalid label name {name:?}");
    }
    let names = pairs.iter().map(|(n, _)| (*n).to_owned()).collect();
    let values = pairs.iter().map(|(_, v)| (*v).to_owned()).collect();
    (names, values)
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves (registering on first use) the counter child of family
    /// `name` with the given labels. Callers cache the returned `Arc`;
    /// increments on it are one relaxed atomic add.
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric/label name, a duplicate label name,
    /// or if `name` was previously registered with a different kind,
    /// help text, or label-name set (programming errors).
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.child(name, help, MetricKind::Counter, labels, None) {
            Child::Counter(c) => c,
            _ => unreachable!("kind checked in child()"),
        }
    }

    /// Resolves (registering on first use) the gauge child of family
    /// `name` with the given labels.
    ///
    /// # Panics
    ///
    /// As for [`MetricsRegistry::counter`].
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.child(name, help, MetricKind::Gauge, labels, None) {
            Child::Gauge(g) => g,
            _ => unreachable!("kind checked in child()"),
        }
    }

    /// Resolves (registering on first use) the histogram child of
    /// family `name` with the given labels and bucket edges. Every
    /// child of a histogram family shares the same edges.
    ///
    /// # Panics
    ///
    /// As for [`MetricsRegistry::counter`], plus if `bounds` differ
    /// from the family's registered edges (or are invalid per
    /// [`Histogram::with_bounds`]).
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Arc<Histogram> {
        match self.child(name, help, MetricKind::Histogram, labels, Some(bounds)) {
            Child::Histogram(h) => h,
            _ => unreachable!("kind checked in child()"),
        }
    }

    fn child(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        bounds: Option<&[f64]>,
    ) -> Child {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        let (label_names, label_values) = canonical_labels(labels);
        let mut families = self.families.lock().expect("metrics registry poisoned");
        let family = families.entry(name.to_owned()).or_insert_with(|| Family {
            help: help.to_owned(),
            kind,
            label_names: label_names.clone(),
            bounds: bounds.map(Into::into),
            children: BTreeMap::new(),
        });
        assert_eq!(
            family.kind, kind,
            "metric {name:?} re-registered with a different kind"
        );
        assert_eq!(
            family.help, help,
            "metric {name:?} re-registered with different help text"
        );
        assert_eq!(
            family.label_names, label_names,
            "metric {name:?} re-registered with a different label set"
        );
        if let (Some(theirs), Some(mine)) = (bounds, family.bounds.as_deref()) {
            assert_eq!(
                mine, theirs,
                "metric {name:?} re-registered with different bucket edges"
            );
        }
        family
            .children
            .entry(label_values)
            .or_insert_with(|| match kind {
                MetricKind::Counter => Child::Counter(Arc::new(Counter::new())),
                MetricKind::Gauge => Child::Gauge(Arc::new(Gauge::new())),
                MetricKind::Histogram => Child::Histogram(Arc::new(Histogram::with_bounds(
                    bounds.expect("histogram registration carries bounds"),
                ))),
            })
            .clone()
    }

    /// Captures every family and child as plain data, suitable for
    /// merging across workers and rendering (Prometheus text or JSON).
    pub fn snapshot(&self) -> RegistrySnapshot {
        let families = self.families.lock().expect("metrics registry poisoned");
        let mut out = BTreeMap::new();
        for (name, family) in families.iter() {
            let children = family
                .children
                .iter()
                .map(|(values, child)| {
                    let value = match child {
                        Child::Counter(c) => MetricValue::Counter(c.get()),
                        Child::Gauge(g) => MetricValue::Gauge(g.get()),
                        Child::Histogram(h) => MetricValue::Histogram {
                            bounds: h.bounds().to_vec(),
                            counts: h.snapshot(),
                            sum: h.sum(),
                        },
                    };
                    (values.clone(), value)
                })
                .collect();
            out.insert(
                name.clone(),
                FamilySnapshot {
                    help: family.help.clone(),
                    kind: family.kind,
                    label_names: family.label_names.clone(),
                    children,
                },
            );
        }
        RegistrySnapshot { families: out }
    }
}

/// One child's captured value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram state: per-bucket counts (finite buckets first,
    /// overflow last) plus the sum of finite observations.
    Histogram {
        /// Inclusive upper bucket edges.
        bounds: Vec<f64>,
        /// Per-bucket counts (`bounds.len() + 1` entries; overflow
        /// last).
        counts: Vec<u64>,
        /// Sum of finite observations.
        sum: f64,
    },
}

/// One family's captured state.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilySnapshot {
    /// The `# HELP` text.
    pub help: String,
    /// Counter / gauge / histogram.
    pub kind: MetricKind,
    /// Canonical (sorted) label names.
    pub label_names: Vec<String>,
    /// Children keyed by label values in `label_names` order.
    pub children: BTreeMap<Vec<String>, MetricValue>,
}

/// A point-in-time capture of a whole registry: plain data, mergeable,
/// renderable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Families keyed by metric name.
    pub families: BTreeMap<String, FamilySnapshot>,
}

impl RegistrySnapshot {
    /// Folds `other` into `self`. The merge is commutative and
    /// associative: counters and histogram buckets/sums add, and
    /// gauges **sum** (per-worker gauges are additive contributions —
    /// see the module docs).
    ///
    /// # Panics
    ///
    /// Panics when the same family name appears with a different kind,
    /// label set, or histogram bucket edges.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (name, theirs) in &other.families {
            let Some(mine) = self.families.get_mut(name) else {
                self.families.insert(name.clone(), theirs.clone());
                continue;
            };
            assert_eq!(
                mine.kind, theirs.kind,
                "cannot merge {name:?}: kinds differ"
            );
            assert_eq!(
                mine.label_names, theirs.label_names,
                "cannot merge {name:?}: label sets differ"
            );
            for (values, value) in &theirs.children {
                let Some(existing) = mine.children.get_mut(values) else {
                    mine.children.insert(values.clone(), value.clone());
                    continue;
                };
                match (existing, value) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a += b,
                    (
                        MetricValue::Histogram {
                            bounds: ab,
                            counts: ac,
                            sum: asum,
                        },
                        MetricValue::Histogram {
                            bounds: bb,
                            counts: bc,
                            sum: bsum,
                        },
                    ) => {
                        assert_eq!(ab, bb, "cannot merge {name:?}: bucket edges differ");
                        for (a, b) in ac.iter_mut().zip(bc.iter()) {
                            *a += b;
                        }
                        *asum += bsum;
                    }
                    _ => unreachable!("kind equality checked above"),
                }
            }
        }
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (v0.0.4): `# HELP` / `# TYPE` headers, escaped label values,
    /// and histograms as cumulative `_bucket{le=...}` series plus
    /// `_sum` / `_count`. Output is deterministic (families and
    /// children in sorted order).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(1024);
        for (name, family) in &self.families {
            out.push_str("# HELP ");
            out.push_str(name);
            out.push(' ');
            escape_help(&mut out, &family.help);
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(family.kind.as_str());
            out.push('\n');
            for (values, value) in &family.children {
                match value {
                    MetricValue::Counter(v) => {
                        write_sample(&mut out, name, &family.label_names, values, None);
                        let _ = writeln!(out, " {v}");
                    }
                    MetricValue::Gauge(v) => {
                        write_sample(&mut out, name, &family.label_names, values, None);
                        out.push(' ');
                        write_f64(&mut out, *v);
                        out.push('\n');
                    }
                    MetricValue::Histogram {
                        bounds,
                        counts,
                        sum,
                    } => {
                        let bucket = format!("{name}_bucket");
                        let mut cum = 0u64;
                        for (edge, count) in bounds.iter().zip(counts.iter()) {
                            cum += count;
                            let mut le = String::new();
                            write_f64(&mut le, *edge);
                            write_sample(&mut out, &bucket, &family.label_names, values, Some(&le));
                            let _ = writeln!(out, " {cum}");
                        }
                        cum += counts.last().copied().unwrap_or(0);
                        write_sample(&mut out, &bucket, &family.label_names, values, Some("+Inf"));
                        let _ = writeln!(out, " {cum}");
                        write_sample(
                            &mut out,
                            &format!("{name}_sum"),
                            &family.label_names,
                            values,
                            None,
                        );
                        out.push(' ');
                        write_f64(&mut out, *sum);
                        out.push('\n');
                        write_sample(
                            &mut out,
                            &format!("{name}_count"),
                            &family.label_names,
                            values,
                            None,
                        );
                        let _ = writeln!(out, " {cum}");
                    }
                }
            }
        }
        out
    }

    /// Renders the snapshot as one compact JSON object keyed by metric
    /// name — the shape the bench bins fold into their BENCH outputs.
    ///
    /// Counters/gauges: `{"kind":..,"samples":[{"labels":{..},
    /// "value":..}]}`; histograms carry `bounds`/`counts`/`sum`/
    /// `count` instead of `value`.
    pub fn render_json(&self) -> String {
        use crate::event::write_json_string;
        let mut out = String::with_capacity(1024);
        out.push('{');
        let mut first_family = true;
        for (name, family) in &self.families {
            if !first_family {
                out.push(',');
            }
            first_family = false;
            write_json_string(&mut out, name);
            let _ = write!(
                out,
                ":{{\"kind\":\"{}\",\"samples\":[",
                family.kind.as_str()
            );
            let mut first_child = true;
            for (values, value) in &family.children {
                if !first_child {
                    out.push(',');
                }
                first_child = false;
                out.push_str("{\"labels\":{");
                for (i, (label, val)) in family.label_names.iter().zip(values).enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(&mut out, label);
                    out.push(':');
                    write_json_string(&mut out, val);
                }
                out.push('}');
                match value {
                    MetricValue::Counter(v) => {
                        let _ = write!(out, ",\"value\":{v}");
                    }
                    MetricValue::Gauge(v) => {
                        out.push_str(",\"value\":");
                        write_json_f64(&mut out, *v);
                    }
                    MetricValue::Histogram {
                        bounds,
                        counts,
                        sum,
                    } => {
                        out.push_str(",\"bounds\":[");
                        for (i, b) in bounds.iter().enumerate() {
                            if i > 0 {
                                out.push(',');
                            }
                            write_json_f64(&mut out, *b);
                        }
                        out.push_str("],\"counts\":[");
                        for (i, c) in counts.iter().enumerate() {
                            if i > 0 {
                                out.push(',');
                            }
                            let _ = write!(out, "{c}");
                        }
                        out.push_str("],\"sum\":");
                        write_json_f64(&mut out, *sum);
                        let total: u64 = counts.iter().sum();
                        let _ = write!(out, ",\"count\":{total}");
                    }
                }
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push('}');
        out
    }
}

/// Writes `name{label="value",...,le="..."}` (no trailing space). The
/// label block is omitted entirely when there are no labels.
fn write_sample(
    out: &mut String,
    name: &str,
    label_names: &[String],
    values: &[String],
    le: Option<&str>,
) {
    out.push_str(name);
    if label_names.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (label, value) in label_names.iter().zip(values) {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(label);
        out.push_str("=\"");
        escape_label_value(out, value);
        out.push('"');
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str("le=\"");
        out.push_str(le);
        out.push('"');
    }
    out.push('}');
}

/// Escapes a label value per the exposition format: `\` → `\\`,
/// `"` → `\"`, newline → `\n`.
fn escape_label_value(out: &mut String, value: &str) {
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Escapes help text per the exposition format: `\` → `\\`, newline →
/// `\n` (quotes are *not* escaped in help).
fn escape_help(out: &mut String, help: &str) {
    for c in help.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Writes an `f64` sample value in exposition syntax (`NaN`, `+Inf`,
/// `-Inf` spelled out).
fn write_f64(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("+Inf");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Inf");
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Writes an `f64` as JSON (non-finite values encode as `null`).
fn write_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_per_label_set() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("otem_test_total", "help", &[("route", "/simulate")]);
        let b = reg.counter("otem_test_total", "help", &[("route", "/simulate")]);
        let other = reg.counter("otem_test_total", "help", &[("route", "/plan")]);
        a.add(3);
        b.add(2);
        other.inc();
        assert_eq!(a.get(), 5, "same labels resolve to the same child");
        assert_eq!(other.get(), 1);
    }

    #[test]
    fn label_order_does_not_matter() {
        let reg = MetricsRegistry::new();
        let a = reg.counter(
            "m_total",
            "h",
            &[("mode", "adjoint"), ("outcome", "converged")],
        );
        let b = reg.counter(
            "m_total",
            "h",
            &[("outcome", "converged"), ("mode", "adjoint")],
        );
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflicts_are_rejected() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("m", "h", &[]);
        let _ = reg.gauge("m", "h", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_metric_names_are_rejected() {
        let _ = MetricsRegistry::new().counter("9bad", "h", &[]);
    }

    #[test]
    #[should_panic(expected = "duplicate label name")]
    fn duplicate_label_names_are_rejected() {
        let _ = MetricsRegistry::new().counter("m", "h", &[("a", "1"), ("a", "2")]);
    }

    #[test]
    fn snapshot_merge_adds_counters_and_buckets() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.counter("c_total", "h", &[]).add(2);
        b.counter("c_total", "h", &[]).add(3);
        a.gauge("g", "h", &[]).set(1.5);
        b.gauge("g", "h", &[]).set(2.5);
        a.histogram("h_seconds", "h", &[], &[1.0, 10.0])
            .observe(0.5);
        b.histogram("h_seconds", "h", &[], &[1.0, 10.0])
            .observe(5.0);
        let mut left = a.snapshot();
        let mut right = b.snapshot();
        let mut swapped = right.clone();
        left.merge(&b.snapshot());
        swapped.merge(&a.snapshot());
        assert_eq!(left, swapped, "merge is commutative");
        right.merge(&a.snapshot());
        assert_eq!(
            left.families["c_total"].children[&Vec::<String>::new()],
            MetricValue::Counter(5)
        );
        assert_eq!(
            left.families["g"].children[&Vec::<String>::new()],
            MetricValue::Gauge(4.0),
            "gauges sum-merge"
        );
        assert_eq!(
            left.families["h_seconds"].children[&Vec::<String>::new()],
            MetricValue::Histogram {
                bounds: vec![1.0, 10.0],
                counts: vec![1, 1, 0],
                sum: 5.5
            }
        );
    }

    #[test]
    fn prometheus_rendering_is_cumulative_and_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter(
            "otem_requests_total",
            "Total requests.",
            &[("route", "/a\"b\\c\nd")],
        )
        .add(7);
        let h = reg.histogram(
            "otem_lat_seconds",
            "Latency.",
            &[("route", "/plan")],
            &[0.1, 1.0],
        );
        h.observe(0.05);
        h.observe(0.5);
        h.observe(5.0);
        reg.gauge("otem_up", "Uptime.", &[]).set(12.5);
        let text = reg.snapshot().render_prometheus();
        assert!(text.contains("# HELP otem_requests_total Total requests.\n"));
        assert!(text.contains("# TYPE otem_requests_total counter\n"));
        assert!(
            text.contains("otem_requests_total{route=\"/a\\\"b\\\\c\\nd\"} 7\n"),
            "{text}"
        );
        assert!(text.contains("# TYPE otem_lat_seconds histogram\n"));
        assert!(text.contains("otem_lat_seconds_bucket{route=\"/plan\",le=\"0.1\"} 1\n"));
        assert!(text.contains("otem_lat_seconds_bucket{route=\"/plan\",le=\"1\"} 2\n"));
        assert!(text.contains("otem_lat_seconds_bucket{route=\"/plan\",le=\"+Inf\"} 3\n"));
        assert!(text.contains("otem_lat_seconds_sum{route=\"/plan\"} 5.55\n"));
        assert!(text.contains("otem_lat_seconds_count{route=\"/plan\"} 3\n"));
        assert!(
            text.contains("otem_up 12.5\n"),
            "bare sample without labels"
        );
    }

    #[test]
    fn json_rendering_carries_labels_and_histogram_state() {
        let reg = MetricsRegistry::new();
        reg.counter("c_total", "h", &[("k", "v")]).add(4);
        reg.histogram("lat", "h", &[], &[1.0]).observe(0.5);
        let json = reg.snapshot().render_json();
        assert!(json.contains("\"c_total\":{\"kind\":\"counter\""), "{json}");
        assert!(
            json.contains("{\"labels\":{\"k\":\"v\"},\"value\":4}"),
            "{json}"
        );
        assert!(
            json.contains("\"bounds\":[1],\"counts\":[1,0],\"sum\":0.5,\"count\":1"),
            "{json}"
        );
    }
}
