//! Property tests for the metrics registry: snapshot merge is
//! commutative and label-order independent, and the Prometheus text
//! exposition round-trips — every value a snapshot holds is readable
//! back out of the rendered text through the hand-rolled parser.

use otem_telemetry::promparse::validate_exposition;
use otem_telemetry::{MetricValue, MetricsRegistry, RegistrySnapshot};
use proptest::prelude::*;

const MODES: [&str; 3] = ["adjoint", "gauss_newton", "finite_diff"];
const OUTCOMES: [&str; 3] = ["converged", "stalled", "deadline_reached"];
const ROUTES: [&str; 3] = ["/simulate", "/plan", "other"];
const BOUNDS: [f64; 3] = [0.001, 0.1, 1.0];

const COUNTER_HELP: &str = "Property-suite counter.";
const GAUGE_HELP: &str = "Property-suite gauge.";
const HIST_HELP: &str = "Property-suite histogram.";

/// Applies one encoded operation to `reg`. The encoding packs an
/// operation kind, a label choice, a label *order* bit (so the suite
/// exercises both `[mode, outcome]` and `[outcome, mode]` on the same
/// family), and a magnitude into a single `u64`.
fn apply(reg: &MetricsRegistry, op: u64) {
    let kind = op % 3;
    let pick = ((op / 3) % 9) as usize;
    let swapped = (op / 27) % 2 == 1;
    let magnitude = op / 54;
    match kind {
        0 => {
            let mode = MODES[pick % 3];
            let outcome = OUTCOMES[pick / 3];
            let labels_fwd = [("mode", mode), ("outcome", outcome)];
            let labels_rev = [("outcome", outcome), ("mode", mode)];
            let labels: &[(&str, &str)] = if swapped { &labels_rev } else { &labels_fwd };
            reg.counter("otem_prop_total", COUNTER_HELP, labels)
                .add(magnitude % 100);
        }
        1 => {
            let shard = ROUTES[pick % 3];
            reg.gauge("otem_prop_shard_load", GAUGE_HELP, &[("shard", shard)])
                .set((magnitude % 64) as f64 * 0.25);
        }
        _ => {
            let route = ROUTES[pick % 3];
            // Dyadic values keep f64 sums exact, so merge-order
            // identities hold bit-for-bit rather than approximately.
            reg.histogram("otem_prop_seconds", HIST_HELP, &[("route", route)], &BOUNDS)
                .observe((magnitude % 4096) as f64 * (1.0 / 1024.0));
        }
    }
}

fn build(ops: &[u64]) -> MetricsRegistry {
    let reg = MetricsRegistry::new();
    for &op in ops {
        apply(&reg, op);
    }
    reg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `a.merge(b)` equals `b.merge(a)` — field-for-field, and
    /// rendered byte-for-byte — for arbitrary operation histories.
    #[test]
    fn snapshot_merge_is_commutative(
        ops_a in prop::collection::vec(0u64..1_000_000, 0..60),
        ops_b in prop::collection::vec(0u64..1_000_000, 0..60),
    ) {
        let a = build(&ops_a).snapshot();
        let b = build(&ops_b).snapshot();
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.render_prometheus(), ba.render_prometheus());
        prop_assert_eq!(ab.render_json(), ba.render_json());
    }

    /// Merging is associative: `(a+b)+c == a+(b+c)`.
    #[test]
    fn snapshot_merge_is_associative(
        ops_a in prop::collection::vec(0u64..1_000_000, 0..40),
        ops_b in prop::collection::vec(0u64..1_000_000, 0..40),
        ops_c in prop::collection::vec(0u64..1_000_000, 0..40),
    ) {
        let a = build(&ops_a).snapshot();
        let b = build(&ops_b).snapshot();
        let c = build(&ops_c).snapshot();
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// The merge identity: folding in an empty snapshot changes
    /// nothing, in either direction.
    #[test]
    fn empty_snapshot_is_the_merge_identity(
        ops in prop::collection::vec(0u64..1_000_000, 0..60),
    ) {
        let a = build(&ops).snapshot();
        let mut left = a.clone();
        left.merge(&RegistrySnapshot::default());
        prop_assert_eq!(&left, &a);
        let mut right = RegistrySnapshot::default();
        right.merge(&a);
        prop_assert_eq!(&right, &a);
    }

    /// The label *order* bit in the op encoding must not matter:
    /// flipping every order bit yields a bit-identical exposition.
    /// (Each op registers the same family with its labels in one of
    /// two orders; canonicalization makes them the same child.)
    #[test]
    fn label_order_never_changes_the_exposition(
        ops in prop::collection::vec(0u64..1_000_000, 0..60),
    ) {
        let flipped: Vec<u64> = ops
            .iter()
            .map(|&op| if (op / 27) % 2 == 1 { op - 27 } else { op + 27 })
            .collect();
        let original = build(&ops).snapshot();
        let reordered = build(&flipped).snapshot();
        prop_assert_eq!(&original, &reordered);
        prop_assert_eq!(
            original.render_prometheus(),
            reordered.render_prometheus()
        );
    }

    /// Everything a snapshot holds survives the trip through
    /// `render_prometheus` and back through the parser: counters and
    /// gauges value-for-value, histograms as their `_sum` and `_count`
    /// series, all under the exact label sets they were registered
    /// with (validated structurally by `validate_exposition` first).
    #[test]
    fn exposition_round_trips_through_the_parser(
        ops in prop::collection::vec(0u64..1_000_000, 1..80),
    ) {
        let snapshot = build(&ops).snapshot();
        let text = snapshot.render_prometheus();
        let parsed = validate_exposition(&text)
            .map_err(|e| TestCaseError::fail(format!("invalid exposition: {e}")))?;
        for (name, family) in &snapshot.families {
            let parsed_family = parsed
                .families
                .get(name)
                .ok_or_else(|| TestCaseError::fail(format!("family {name} missing")))?;
            prop_assert_eq!(
                parsed_family.kind.as_deref(),
                Some(family.kind.as_str())
            );
            for (values, value) in &family.children {
                let labels: Vec<(&str, &str)> = family
                    .label_names
                    .iter()
                    .zip(values)
                    .map(|(n, v)| (n.as_str(), v.as_str()))
                    .collect();
                match value {
                    MetricValue::Counter(v) => {
                        let sample = parsed.sample(name, &labels).ok_or_else(|| {
                            TestCaseError::fail(format!("counter {name}{labels:?} missing"))
                        })?;
                        prop_assert_eq!(sample.value, *v as f64);
                    }
                    MetricValue::Gauge(v) => {
                        let sample = parsed.sample(name, &labels).ok_or_else(|| {
                            TestCaseError::fail(format!("gauge {name}{labels:?} missing"))
                        })?;
                        prop_assert_eq!(sample.value, *v);
                    }
                    MetricValue::Histogram { counts, sum, .. } => {
                        let total: u64 = counts.iter().sum();
                        let count_name = format!("{name}_count");
                        let sum_name = format!("{name}_sum");
                        let count_sample =
                            parsed.sample(&count_name, &labels).ok_or_else(|| {
                                TestCaseError::fail(format!("{count_name}{labels:?} missing"))
                            })?;
                        prop_assert_eq!(count_sample.value, total as f64);
                        let sum_sample = parsed.sample(&sum_name, &labels).ok_or_else(|| {
                            TestCaseError::fail(format!("{sum_name}{labels:?} missing"))
                        })?;
                        prop_assert_eq!(sum_sample.value, *sum);
                    }
                }
            }
        }
    }
}
