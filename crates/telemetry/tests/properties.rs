//! Property tests for the telemetry primitives: the ring buffer's
//! bound/order invariants and the histogram's conservation and
//! merge-commutativity laws.

use otem_telemetry::{Histogram, RingBuffer};
use proptest::prelude::*;

/// Bucket edges shared by the histogram properties: a fixed, strictly
/// ascending grid wide enough that generated values land in several
/// buckets (plus the implicit overflow bucket).
const EDGES: [f64; 5] = [-10.0, -1.0, 0.0, 1.0, 10.0];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ring_never_exceeds_capacity(
        capacity in 1usize..40,
        items in prop::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let mut ring = RingBuffer::new(capacity);
        for (i, &item) in items.iter().enumerate() {
            let evicted = ring.push(item);
            prop_assert!(ring.len() <= capacity);
            prop_assert_eq!(ring.len(), (i + 1).min(capacity));
            // Eviction happens exactly when the buffer was already full,
            // and always surrenders the oldest element.
            if i >= capacity {
                prop_assert_eq!(evicted, Some(items[i - capacity]));
            } else {
                prop_assert_eq!(evicted, None);
            }
        }
    }

    #[test]
    fn ring_preserves_insertion_order_of_survivors(
        capacity in 1usize..40,
        items in prop::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let mut ring = RingBuffer::new(capacity);
        for &item in &items {
            ring.push(item);
        }
        let start = items.len().saturating_sub(capacity);
        prop_assert_eq!(ring.to_vec(), items[start..].to_vec());
    }

    #[test]
    fn histogram_conserves_counts(
        values in prop::collection::vec(-50.0..50.0f64, 0..300),
    ) {
        let h = Histogram::with_bounds(&EDGES);
        for &v in &values {
            h.observe(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(
            h.snapshot().iter().sum::<u64>(),
            values.len() as u64
        );
    }

    #[test]
    fn histogram_conserves_counts_with_non_finite_inputs(
        values in prop::collection::vec(-50.0..50.0f64, 0..100),
        weird in 0usize..8,
    ) {
        let h = Histogram::with_bounds(&EDGES);
        for &v in &values {
            h.observe(v);
        }
        let specials = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 1e308];
        for i in 0..weird {
            h.observe(specials[i % specials.len()]);
        }
        prop_assert_eq!(h.count(), (values.len() + weird) as u64);
    }

    #[test]
    fn histogram_merge_is_order_invariant(
        a in prop::collection::vec(-50.0..50.0f64, 0..150),
        b in prop::collection::vec(-50.0..50.0f64, 0..150),
    ) {
        let fill = |values: &[f64]| {
            let h = Histogram::with_bounds(&EDGES);
            for &v in values {
                h.observe(v);
            }
            h
        };
        let (ha, hb) = (fill(&a), fill(&b));

        // a ⊕ b and b ⊕ a agree bucket-for-bucket…
        let ab = ha.clone();
        ab.merge(&hb);
        let ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab.snapshot(), ba.snapshot());

        // …and both equal the histogram of the concatenated stream.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(ab.snapshot(), fill(&all).snapshot());
        prop_assert_eq!(ab.count(), (a.len() + b.len()) as u64);
    }

    #[test]
    fn bucket_for_is_consistent_with_edges(v in -100.0..100.0f64) {
        let h = Histogram::with_bounds(&EDGES);
        let idx = h.bucket_for(v);
        if idx < EDGES.len() {
            prop_assert!(v <= EDGES[idx]);
            if idx > 0 {
                prop_assert!(v > EDGES[idx - 1]);
            }
        } else {
            prop_assert!(v > EDGES[EDGES.len() - 1]);
        }
    }

    #[test]
    fn quantile_stays_within_the_bucket_edges(
        values in prop::collection::vec(-50.0..50.0f64, 1..300),
        q in 0.0..=1.0f64,
    ) {
        let h = Histogram::with_bounds(&EDGES);
        for &v in &values {
            h.observe(v);
        }
        let est = h.quantile(q);
        // Estimates are interpolated bucket edges, so they live on the
        // grid's span: the lowest finite edge up to the open bound's
        // saturation at the highest finite edge.
        prop_assert!(est.is_finite());
        prop_assert!(est >= EDGES[0], "{est} below the lowest edge");
        prop_assert!(est <= EDGES[EDGES.len() - 1], "{est} above saturation");
    }

    #[test]
    fn extreme_quantiles_bracket_every_estimate(
        values in prop::collection::vec(-50.0..50.0f64, 1..300),
        q in 0.0..=1.0f64,
    ) {
        // q = 0 is the lower edge of the first occupied bucket and
        // q = 1 the upper edge of the last (or saturation): together
        // they bound every interior estimate.
        let h = Histogram::with_bounds(&EDGES);
        for &v in &values {
            h.observe(v);
        }
        let (lo, hi) = (h.quantile(0.0), h.quantile(1.0));
        prop_assert!(lo <= h.quantile(q), "quantile(0) = {lo} is the floor");
        prop_assert!(h.quantile(q) <= hi, "quantile(1) = {hi} is the ceiling");
        // Out-of-range and NaN q clamp rather than extrapolate.
        prop_assert_eq!(h.quantile(-3.0), lo);
        prop_assert_eq!(h.quantile(7.5), hi);
        prop_assert_eq!(h.quantile(f64::NAN), lo);
    }

    #[test]
    fn quantile_is_monotone_in_q(
        values in prop::collection::vec(-50.0..50.0f64, 1..300),
        q1 in 0.0..=1.0f64,
        q2 in 0.0..=1.0f64,
    ) {
        let h = Histogram::with_bounds(&EDGES);
        for &v in &values {
            h.observe(v);
        }
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(
            h.quantile(lo) <= h.quantile(hi),
            "quantile({lo}) > quantile({hi})"
        );
    }

    #[test]
    fn quantile_of_a_point_mass_recovers_its_bucket(
        v in -45.0..45.0f64,
        n in 1u32..50,
        q in 0.05..=0.95f64,
    ) {
        // Every observation in one bucket: any interior quantile must
        // land inside that bucket's edge interval.
        let h = Histogram::with_bounds(&EDGES);
        for _ in 0..n {
            h.observe(v);
        }
        let idx = h.bucket_for(v);
        let est = h.quantile(q);
        if idx < EDGES.len() {
            prop_assert!(est <= EDGES[idx], "{est} above bucket {idx}");
            let lower = if idx == 0 { EDGES[0].min(0.0) } else { EDGES[idx - 1] };
            prop_assert!(est >= lower, "{est} below bucket {idx}");
        } else {
            prop_assert_eq!(est, EDGES[EDGES.len() - 1]);
        }
    }
}

#[test]
fn quantile_of_an_empty_histogram_is_nan() {
    let h = Histogram::with_bounds(&EDGES);
    for q in [0.0, 0.5, 1.0, -1.0, 2.0, f64::NAN] {
        assert!(h.quantile(q).is_nan(), "empty histogram at q = {q}");
    }
}

#[test]
fn single_observation_pins_all_quantiles_to_its_bucket() {
    let h = Histogram::with_bounds(&EDGES);
    h.observe(0.5); // lands in (0, 1]
    assert_eq!(h.quantile(0.0), 0.0, "q=0 is the bucket's lower edge");
    assert_eq!(h.quantile(1.0), 1.0, "q=1 is the bucket's upper edge");
    let mid = h.quantile(0.5);
    assert!(
        (0.0..=1.0).contains(&mid),
        "interior quantiles interpolate: {mid}"
    );
}
