//! Property tests for the span layer's structural invariants: no
//! matter in what order guards are opened and dropped, the recorded
//! `span_start` / `span_end` stream is balanced, properly nested per
//! lane, and parent ids always point at the span that was innermost at
//! open time.
//!
//! Guards are deliberately dropped *out of order* (the API allows
//! holding them in collections); the layer's contract is that a guard
//! dropped over still-open children closes those children first.

use otem_telemetry::{span, Event, MemorySink, SpanGuard};
use proptest::prelude::*;

/// Fixed name pool (span names are `&'static str`).
const NAMES: [&str; 5] = ["alpha", "beta", "gamma", "delta", "epsilon"];

/// One scripted action against a bag of live guards.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Open a new span (child of whatever is innermost).
    Open(usize),
    /// Drop the guard at `index % live.len()` — arbitrary order, not
    /// necessarily the innermost.
    Drop(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..NAMES.len()).prop_map(Op::Open),
        (0usize..64).prop_map(Op::Drop),
    ]
}

/// Replays the recorded events through a per-lane stack machine and
/// fails on any structural violation.
fn check_stream(events: &[Event]) -> Result<(), TestCaseError> {
    use std::collections::BTreeMap;
    let mut stacks: BTreeMap<u64, Vec<(u64, &'static str)>> = BTreeMap::new();
    let mut starts = 0u64;
    let mut ends = 0u64;
    for e in events {
        match *e {
            Event::SpanStart {
                id,
                parent,
                name,
                lane,
                ..
            } => {
                starts += 1;
                let stack = stacks.entry(lane).or_default();
                let innermost = stack.last().map_or(0, |&(id, _)| id);
                prop_assert!(
                    parent == innermost,
                    "span {id} opened with parent {parent} but innermost was {innermost}"
                );
                stack.push((id, name));
            }
            Event::SpanEnd {
                id,
                name,
                lane,
                t_ns,
                dur_ns,
            } => {
                ends += 1;
                let stack = stacks.entry(lane).or_default();
                let (top_id, top_name) =
                    stack.pop().expect("span_end with no open span on its lane");
                prop_assert!(top_id == id, "ends must close innermost-first");
                prop_assert_eq!(top_name, name);
                prop_assert!(dur_ns <= t_ns, "duration cannot precede the epoch");
            }
            _ => {}
        }
    }
    prop_assert_eq!(starts, ends);
    for (lane, stack) in stacks {
        prop_assert!(stack.is_empty(), "lane {} left spans open", lane);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_open_close_orders_emit_balanced_nested_streams(
        ops in prop::collection::vec(op_strategy(), 0..40),
    ) {
        let sink = MemorySink::new();
        let base = sink.events().len();
        {
            let mut live: Vec<SpanGuard> = Vec::new();
            for op in ops {
                match op {
                    Op::Open(name) => live.push(span(&sink, NAMES[name])),
                    Op::Drop(index) => {
                        if !live.is_empty() {
                            // swap_remove drops the guard immediately —
                            // possibly a span with open children.
                            let i = index % live.len();
                            drop(live.swap_remove(i));
                        }
                    }
                }
            }
            // Remaining guards drop here, in reverse insertion order —
            // which, after swap_removes, is *not* reverse open order.
        }
        let events: Vec<Event> = sink.events().split_off(base);
        check_stream(&events)?;
    }

    #[test]
    fn disabled_sinks_never_record_and_guards_stay_inert(
        opens in 1usize..10,
    ) {
        let sink = otem_telemetry::NullSink;
        let mut live = Vec::new();
        for k in 0..opens {
            let g = span(&sink, NAMES[k % NAMES.len()]);
            prop_assert!(!g.is_active());
            prop_assert_eq!(g.id(), 0);
            live.push(g);
        }
        drop(live);
        // A span opened right after must still see a clean stack: the
        // inert guards above never touched it.
        let mem = MemorySink::new();
        let base = mem.events().len();
        let g = span(&mem, "probe");
        prop_assert!(g.is_active());
        drop(g);
        let events = mem.events().split_off(base);
        let roots: Vec<_> = events
            .iter()
            .filter_map(|e| match *e {
                Event::SpanStart { parent, .. } => Some(parent),
                _ => None,
            })
            .collect();
        prop_assert_eq!(roots, vec![0u64]);
    }
}
