//! Property tests: solver invariants on randomly generated convex
//! problems with known solutions.

use otem_solver::{
    AugmentedLagrangian, Bounds, ConstrainedProblem, Constraint, FnObjective, Lbfgs, NelderMead,
    ProjectedGradient,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn projected_gradient_solves_random_diagonal_qp(
        center in prop::collection::vec(-5.0..5.0f64, 2..10),
        scales in prop::collection::vec(0.1..50.0f64, 10),
        lo in -2.0..0.0f64,
        hi in 0.5..3.0f64,
    ) {
        let n = center.len();
        let c = center.clone();
        let s = scales[..n].to_vec();
        let f = FnObjective::new(move |x: &[f64]| {
            x.iter()
                .zip(c.iter().zip(&s))
                .map(|(&xi, (&ci, &si))| si * (xi - ci).powi(2))
                .sum()
        });
        let bounds = Bounds::uniform(n, lo, hi);
        let sol = ProjectedGradient::default().minimize(&f, &bounds, &vec![0.0; n]);
        // Optimum of a separable QP over a box is the clamped center.
        for (i, (xi, ci)) in sol.x.iter().zip(&center).enumerate() {
            let expect = ci.clamp(lo, hi);
            prop_assert!(
                (xi - expect).abs() < 1e-4,
                "x[{i}] = {xi} expected {expect}"
            );
        }
    }

    #[test]
    fn lbfgs_matches_projected_gradient_unconstrained(
        center in prop::collection::vec(-3.0..3.0f64, 2..6),
    ) {
        let n = center.len();
        let c1 = center.clone();
        let f = FnObjective::new(move |x: &[f64]| {
            x.iter().zip(&c1).map(|(&xi, &ci)| (xi - ci).powi(2)).sum()
        });
        let a = Lbfgs::default().minimize(&f, &vec![0.0; n]);
        let b = ProjectedGradient::default().minimize(&f, &Bounds::unbounded(n), &vec![0.0; n]);
        for ((ai, bi), ci) in a.x.iter().zip(&b.x).zip(&center) {
            prop_assert!((ai - bi).abs() < 1e-4);
            prop_assert!((ai - ci).abs() < 1e-5);
        }
    }

    #[test]
    fn nelder_mead_agrees_on_small_convex(
        cx in -2.0..2.0f64,
        cy in -2.0..2.0f64,
    ) {
        let f = FnObjective::new(move |x: &[f64]| {
            (x[0] - cx).powi(2) + 2.0 * (x[1] - cy).powi(2)
        });
        let sol = NelderMead::default().minimize(&f, &[0.0, 0.0]);
        prop_assert!((sol.x[0] - cx).abs() < 1e-3, "{sol:?}");
        prop_assert!((sol.x[1] - cy).abs() < 1e-3);
    }

    #[test]
    fn augmented_lagrangian_projects_onto_hyperplane(
        c in prop::collection::vec(-2.0..2.0f64, 3),
        rhs in -1.0..1.0f64,
    ) {
        // min Σ(xᵢ−cᵢ)² s.t. Σxᵢ = rhs: solution is c shifted by the
        // uniform correction (rhs − Σc)/n.
        let n = c.len();
        let c1 = c.clone();
        let f = FnObjective::new(move |x: &[f64]| {
            x.iter().zip(&c1).map(|(&xi, &ci)| (xi - ci).powi(2)).sum()
        });
        let problem = ConstrainedProblem {
            objective: &f,
            bounds: Bounds::unbounded(n),
            constraints: vec![Constraint::equality(move |x: &[f64]| {
                x.iter().sum::<f64>() - rhs
            })],
        };
        let sol = AugmentedLagrangian::default().minimize(&problem, &vec![0.0; n]);
        let shift = (rhs - c.iter().sum::<f64>()) / n as f64;
        for (i, (xi, ci)) in sol.x.iter().zip(&c).enumerate() {
            prop_assert!(
                (xi - (ci + shift)).abs() < 1e-3,
                "x[{i}] = {xi} expected {}",
                ci + shift
            );
        }
    }

    #[test]
    fn solution_never_leaves_the_box(
        start in prop::collection::vec(-10.0..10.0f64, 4),
    ) {
        let f = FnObjective::new(|x: &[f64]| x.iter().map(|v| (v - 7.0).powi(2)).sum());
        let bounds = Bounds::uniform(4, -1.0, 1.0);
        let sol = ProjectedGradient::default().minimize(&f, &bounds, &start);
        prop_assert!(bounds.contains(&sol.x, 1e-12));
    }
}
