//! Gauss-Newton / projected-gradient parity suite.
//!
//! Synthetic least-squares objectives with known minimisers pin the
//! contract of the second-order mode: on ill-conditioned problems
//! [`GaussNewton`] reaches the same box-constrained minimiser as the
//! first-order spectral method within tight tolerance and in strictly
//! fewer iterations; degenerate curvature (singular `JᵀJ`, zero
//! residual) degrades gracefully — finite iterates, no stalls into NaN.

use otem_solver::{Bounds, DenseLeastSquares, GaussNewton, ProjectedGradient, SolverOutcome};
use proptest::prelude::*;

/// A diagonal least-squares bowl `Σ sᵢ (xᵢ − cᵢ)²` encoded as
/// `‖Ax − b‖²` with `A = diag(√sᵢ)`, `b = √sᵢ·cᵢ`.
fn bowl(scales: &[f64], center: &[f64]) -> DenseLeastSquares {
    let n = scales.len();
    let mut a = vec![0.0; n * n];
    let mut b = vec![0.0; n];
    for i in 0..n {
        a[i * n + i] = scales[i].sqrt();
        b[i] = scales[i].sqrt() * center[i];
    }
    DenseLeastSquares::new(n, a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Ill-conditioned valleys (condition number ≥ 100 by
    /// construction): the curvature-aware solver must find the same
    /// interior minimiser and pay strictly fewer iterations than
    /// spectral descent.
    #[test]
    fn ill_conditioned_bowls_agree_in_strictly_fewer_iterations(
        c0 in -0.8..0.8f64,
        c1 in -0.8..0.8f64,
        c2 in -0.8..0.8f64,
        s0 in 1.0..3.0f64,
        s1 in 30.0..100.0f64,
        s2 in 300.0..3000.0f64,
        x0 in prop::collection::vec(-1.0..1.0f64, 3),
    ) {
        let f = bowl(&[s0, s1, s2], &[c0, c1, c2]);
        let bounds = Bounds::uniform(3, -1.0, 1.0);
        let gn = GaussNewton::default().minimize(&f, &bounds, &x0);
        let pg = ProjectedGradient::default().minimize_sync(&f, &bounds, &x0);
        prop_assert_eq!(gn.outcome, SolverOutcome::Converged);
        prop_assert_eq!(pg.outcome, SolverOutcome::Converged);
        // Shared tolerance 1e-8 on the projected-gradient norm with
        // curvature ≥ 2 per coordinate ⇒ each solver sits within 5e-9
        // of the center, so the two minimisers match within 1e-8.
        for ((a, b), c) in gn.x.iter().zip(&pg.x).zip([c0, c1, c2]) {
            prop_assert!((a - b).abs() <= 1e-8, "minimisers diverge: {} vs {}", a, b);
            prop_assert!((a - c).abs() <= 1e-8, "missed the center: {} vs {}", a, c);
        }
        prop_assert!(
            gn.iterations < pg.iterations,
            "GN {} iterations, PG {}", gn.iterations, pg.iterations
        );
    }

    /// Clamp-active corners: the unconstrained minimiser sits outside
    /// the box, so the solution lives on the active set. Both solvers
    /// must land on the same clamped point, and the second-order step
    /// must never need more iterations than first-order descent.
    #[test]
    fn clamp_active_corners_land_on_the_same_face(
        c0 in 1.2..3.0f64,
        c1 in -3.0..-1.2f64,
        c2 in -0.6..0.6f64,
        s0 in 1.0..5.0f64,
        s1 in 50.0..200.0f64,
        s2 in 2.0..20.0f64,
        x0 in prop::collection::vec(-1.0..1.0f64, 3),
    ) {
        let f = bowl(&[s0, s1, s2], &[c0, c1, c2]);
        let bounds = Bounds::uniform(3, -1.0, 1.0);
        let gn = GaussNewton::default().minimize(&f, &bounds, &x0);
        let pg = ProjectedGradient::default().minimize_sync(&f, &bounds, &x0);
        prop_assert_eq!(gn.outcome, SolverOutcome::Converged);
        prop_assert_eq!(pg.outcome, SolverOutcome::Converged);
        // Separable QP over a box: the optimum is the clamped center.
        for ((a, b), c) in gn.x.iter().zip(&pg.x).zip([c0, c1, c2]) {
            let expect = c.clamp(-1.0, 1.0);
            prop_assert!((a - expect).abs() <= 1e-8, "corner missed: {} vs {}", a, expect);
            prop_assert!((a - b).abs() <= 1e-8);
        }
        prop_assert!(gn.iterations <= pg.iterations);
        prop_assert!(bounds.contains(&gn.x, 1e-12));
    }

    /// Singular `JᵀJ` (one residual row, two unknowns): the damping
    /// floor must keep every step finite, eliminate the residual, and
    /// end in a usable outcome — never NaN, never a panic.
    #[test]
    fn singular_jtj_degrades_gracefully(
        a0 in 0.5..2.0f64,
        a1 in 0.5..2.0f64,
        rhs in -1.0..1.0f64,
        x0 in prop::collection::vec(-2.0..2.0f64, 2),
    ) {
        let f = DenseLeastSquares::new(2, vec![a0, a1], vec![rhs]);
        let bounds = Bounds::uniform(2, -2.0, 2.0);
        let gn = GaussNewton::default().minimize(&f, &bounds, &x0);
        prop_assert!(gn.outcome.is_usable(), "{:?}", gn.outcome);
        prop_assert!(gn.x.iter().all(|v| v.is_finite()));
        prop_assert!(gn.value.is_finite());
        // The flat valley a·x = rhs is reachable inside the box for the
        // sampled coefficients, so the residual must be driven out.
        prop_assert!(gn.value < 1e-10, "residual survived: {:?}", gn);
        prop_assert!(bounds.contains(&gn.x, 1e-12));
    }

    /// Zero-residual start: beginning exactly at the minimiser must
    /// declare convergence immediately — no step, no NaN from a
    /// zero-curvature/zero-gradient corner case.
    #[test]
    fn zero_residual_start_is_a_fixed_point(
        c0 in -0.9..0.9f64,
        c1 in -0.9..0.9f64,
        s0 in 0.5..10.0f64,
        s1 in 0.5..10.0f64,
    ) {
        let f = bowl(&[s0, s1], &[c0, c1]);
        let gn = GaussNewton::default().minimize(&f, &Bounds::uniform(2, -1.0, 1.0), &[c0, c1]);
        prop_assert_eq!(gn.outcome, SolverOutcome::Converged);
        prop_assert_eq!(gn.iterations, 0);
        prop_assert!(gn.value.abs() < 1e-20);
    }
}
