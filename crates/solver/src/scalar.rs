//! One-dimensional minimisation: golden-section search and Brent's
//! method, for line searches and scalar design studies (e.g. sizing one
//! parameter against a simulation metric).

use crate::solution::{Solution, SolverOutcome};

/// Golden-section search over `[a, b]` for a unimodal function.
///
/// Robust and derivative-free; linear convergence. Prefer
/// [`brent`] when the function is smooth.
///
/// # Panics
///
/// Panics if `a >= b` or either bound is non-finite.
pub fn golden_section<F: Fn(f64) -> f64>(
    f: F,
    a: f64,
    b: f64,
    tolerance: f64,
    max_iterations: usize,
) -> Solution {
    assert!(a < b && a.is_finite() && b.is_finite(), "invalid bracket");
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let (mut a, mut b) = (a, b);
    let mut c = b - INV_PHI * (b - a);
    let mut d = a + INV_PHI * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    let mut iterations = 0;
    while (b - a) > tolerance && iterations < max_iterations {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - INV_PHI * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + INV_PHI * (b - a);
            fd = f(d);
        }
        iterations += 1;
    }
    let x = 0.5 * (a + b);
    Solution::new(
        vec![x],
        f(x),
        iterations,
        if (b - a) <= tolerance {
            SolverOutcome::Converged
        } else {
            SolverOutcome::BudgetExhausted
        },
    )
}

/// Brent's method over `[a, b]`: golden-section reliability with
/// parabolic-interpolation acceleration on smooth functions.
///
/// # Panics
///
/// Panics if `a >= b` or either bound is non-finite.
pub fn brent<F: Fn(f64) -> f64>(
    f: F,
    a: f64,
    b: f64,
    tolerance: f64,
    max_iterations: usize,
) -> Solution {
    assert!(a < b && a.is_finite() && b.is_finite(), "invalid bracket");
    const CGOLD: f64 = 0.381_966_011_250_105;
    let (mut a, mut b) = (a, b);
    let mut x = a + CGOLD * (b - a);
    let mut w = x;
    let mut v = x;
    let mut fx = f(x);
    let mut fw = fx;
    let mut fv = fx;
    let mut d: f64 = 0.0;
    let mut e: f64 = 0.0;

    for iterations in 0..max_iterations {
        let m = 0.5 * (a + b);
        let tol1 = tolerance * x.abs() + 1e-12;
        let tol2 = 2.0 * tol1;
        if (x - m).abs() <= tol2 - 0.5 * (b - a) {
            return Solution::new(vec![x], fx, iterations, SolverOutcome::Converged);
        }
        let mut use_golden = true;
        if e.abs() > tol1 {
            // Parabolic fit through (v, fv), (w, fw), (x, fx).
            let r = (x - w) * (fx - fv);
            let q_ = (x - v) * (fx - fw);
            let p_num = (x - v) * q_ - (x - w) * r;
            let mut q = 2.0 * (q_ - r);
            let p = if q > 0.0 { -p_num } else { p_num };
            q = q.abs();
            let e_prev = e;
            e = d;
            if p.abs() < (0.5 * q * e_prev).abs() && p > q * (a - x) && p < q * (b - x) {
                d = p / q;
                let u = x + d;
                if (u - a) < tol2 || (b - u) < tol2 {
                    d = if m > x { tol1 } else { -tol1 };
                }
                use_golden = false;
            }
        }
        if use_golden {
            e = if x < m { b - x } else { a - x };
            d = CGOLD * e;
        }
        let u = if d.abs() >= tol1 {
            x + d
        } else if d > 0.0 {
            x + tol1
        } else {
            x - tol1
        };
        let fu = f(u);
        if fu <= fx {
            if u < x {
                b = x;
            } else {
                a = x;
            }
            v = w;
            fv = fw;
            w = x;
            fw = fx;
            x = u;
            fx = fu;
        } else {
            if u < x {
                a = u;
            } else {
                b = u;
            }
            if fu <= fw || w == x {
                v = w;
                fv = fw;
                w = u;
                fw = fu;
            } else if fu <= fv || v == x || v == w {
                v = u;
                fv = fu;
            }
        }
    }
    Solution::new(vec![x], fx, max_iterations, SolverOutcome::BudgetExhausted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_section_finds_quadratic_minimum() {
        let sol = golden_section(|x| (x - 2.5).powi(2), 0.0, 10.0, 1e-8, 200);
        assert!(sol.converged());
        assert!((sol.x[0] - 2.5).abs() < 1e-6, "{sol:?}");
    }

    #[test]
    fn brent_matches_golden_but_faster() {
        let f = |x: f64| (x - 1.7).powi(2) + 0.3 * (x - 1.7).powi(4);
        let g = golden_section(f, -5.0, 5.0, 1e-10, 500);
        let b = brent(f, -5.0, 5.0, 1e-10, 500);
        assert!((g.x[0] - 1.7).abs() < 1e-6);
        assert!((b.x[0] - 1.7).abs() < 1e-6);
        assert!(
            b.iterations < g.iterations,
            "brent {} vs golden {}",
            b.iterations,
            g.iterations
        );
    }

    #[test]
    fn brent_handles_asymmetric_functions() {
        // exp(x) − 2x: minimum at ln(2).
        let sol = brent(|x| x.exp() - 2.0 * x, -2.0, 3.0, 1e-10, 200);
        assert!((sol.x[0] - std::f64::consts::LN_2).abs() < 1e-7, "{sol:?}");
    }

    #[test]
    fn boundary_minimum_is_found() {
        // Monotone increasing on the bracket: minimum at the left edge.
        let sol = brent(|x| x, 1.0, 4.0, 1e-9, 200);
        assert!(sol.x[0] < 1.001, "{sol:?}");
    }

    #[test]
    fn non_smooth_function_still_converges() {
        let sol = brent(|x: f64| (x - 0.3).abs(), -1.0, 1.0, 1e-9, 300);
        assert!((sol.x[0] - 0.3).abs() < 1e-6, "{sol:?}");
    }

    #[test]
    #[should_panic(expected = "invalid bracket")]
    fn inverted_bracket_panics() {
        let _ = brent(|x| x * x, 1.0, -1.0, 1e-8, 100);
    }
}
