//! Projected Levenberg–Marquardt Gauss-Newton for box-constrained
//! nonlinear least-squares-dominated objectives.
//!
//! The first-order spectral method ([`crate::ProjectedGradient`]) pays
//! one gradient per iteration and needs many iterations on
//! ill-conditioned terrain. When the objective exposes a Gauss-Newton
//! curvature matrix `H ≈ 2·JᵀJ` (the [`CurvatureObjective`] trait — for
//! the MPC rollout it is assembled from the *same* adjoint tape as the
//! gradient, at no extra rollouts), a damped Newton step
//!
//! ```text
//! (H + λ·D) p = −∇f,   D = diag(max(Hᵢᵢ, σ))
//! ```
//!
//! cuts the iteration count dramatically: λ is adapted Levenberg–
//! Marquardt-style (shrink after a full accepted step, grow ×10 on
//! rejection or factorisation failure), and σ is a Barzilai–Borwein
//! curvature estimate `sᵀy/sᵀs` that keeps the damping scale sensible in
//! directions where the Gauss-Newton matrix is singular or zero (there
//! the method degrades gracefully to a damped spectral gradient step
//! instead of producing non-finite steps). Steps are projected onto the
//! box and safeguarded by monotone Armijo backtracking; convergence is
//! declared on the same projected-gradient infinity norm as
//! [`crate::ProjectedGradient`], so the two solvers are directly
//! comparable iteration-for-iteration.

use crate::bounds::Bounds;
use crate::clock::Deadline;
use crate::objective::Objective;
use crate::solution::{Solution, SolverOutcome};
use otem_telemetry::{span, Event, NullSink, Sink};
use serde::{Deserialize, Serialize};

/// An objective that can produce its Gauss-Newton curvature matrix
/// alongside the gradient — typically from one shared evaluation pass
/// (for the MPC rollout objective: one taped rollout, one backward
/// sweep for `∇f`, one forward sensitivity sweep over the same tape for
/// `H`).
pub trait CurvatureObjective: Objective {
    /// Writes `∇f(x)` into `grad` and the Gauss-Newton curvature
    /// approximation into `hess` (row-major `n × n`, symmetric positive
    /// semi-definite; for `f = Σ wᵢ rᵢ²` it is `2·Σ wᵢ ∇rᵢ∇rᵢᵀ`).
    ///
    /// # Panics
    ///
    /// Implementations may panic if `grad.len() != x.len()` or
    /// `hess.len() != x.len()²`.
    fn gradient_and_curvature(&self, x: &[f64], grad: &mut [f64], hess: &mut [f64]);
}

impl<T: CurvatureObjective + ?Sized> CurvatureObjective for &T {
    fn gradient_and_curvature(&self, x: &[f64], grad: &mut [f64], hess: &mut [f64]) {
        (**self).gradient_and_curvature(x, grad, hess);
    }
}

/// Projected Levenberg–Marquardt Gauss-Newton solver.
///
/// Shares the convergence criterion (projected-gradient infinity norm)
/// and telemetry shape (one [`Event::SolverIteration`] per outer
/// iteration, one [`Event::GradientEval`] per curvature evaluation)
/// with [`crate::ProjectedGradient`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaussNewton {
    /// Maximum outer iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on the projected-gradient infinity norm.
    pub tolerance: f64,
    /// Armijo sufficient-decrease parameter for the projected line
    /// search.
    pub armijo: f64,
    /// Initial Levenberg–Marquardt damping.
    pub lambda_init: f64,
    /// Lower damping safeguard (a floor keeps the factorisation
    /// positive definite even with a singular curvature matrix).
    pub lambda_min: f64,
    /// Upper damping safeguard; exceeding it means no acceptable step
    /// exists at any trust radius and the solve reports
    /// [`SolverOutcome::Stalled`].
    pub lambda_max: f64,
    /// Relative function-decrease floor (MINPACK-style `ftol`). When a
    /// projected line search fails *and* the linear model of the full
    /// damped step promises a decrease below `ftol · |f|`, the
    /// objective is flat at float resolution along every remaining
    /// direction the model can produce, and the solve reports
    /// [`SolverOutcome::Converged`] instead of escalating damping
    /// toward a spurious stall.
    pub ftol: f64,
    /// Line-search batching width: `0` or `1` runs the scalar Armijo
    /// backtracking ladder; `≥ 2` speculatively evaluates groups of
    /// that many step-size candidates through one
    /// [`Objective::value_batch`] call and scans them in ladder order
    /// with the identical acceptance test — bit-identical iterates,
    /// fewer (amortised) evaluation passes.
    pub batch_width: usize,
}

impl Default for GaussNewton {
    fn default() -> Self {
        Self {
            max_iterations: 400,
            tolerance: 1e-8,
            armijo: 1e-4,
            lambda_init: 1e-3,
            lambda_min: 1e-12,
            lambda_max: 1e10,
            ftol: 1e-12,
            batch_width: 0,
        }
    }
}

impl GaussNewton {
    /// Minimises `f` over the box from the starting point `x0`
    /// (projected into the box first).
    ///
    /// # Panics
    ///
    /// Panics if `x0.len() != bounds.len()`.
    pub fn minimize<F: CurvatureObjective + ?Sized>(
        &self,
        f: &F,
        bounds: &Bounds,
        x0: &[f64],
    ) -> Solution {
        self.minimize_within(f, bounds, x0, &NullSink, None)
    }

    /// The full entry point: telemetry plus an optional [`Deadline`].
    /// Deadline semantics match
    /// [`ProjectedGradient::minimize_sync_within`](crate::ProjectedGradient::minimize_sync_within):
    /// polled once per outer iteration after the convergence check; on
    /// expiry the best iterate seen so far is returned with
    /// [`SolverOutcome::DeadlineReached`] (for a zero budget, the
    /// projected warm start with `iterations == 0`).
    ///
    /// # Panics
    ///
    /// Panics if `x0.len() != bounds.len()`.
    pub fn minimize_within<F: CurvatureObjective + ?Sized>(
        &self,
        f: &F,
        bounds: &Bounds,
        x0: &[f64],
        sink: &dyn Sink,
        deadline: Option<&Deadline<'_>>,
    ) -> Solution {
        assert_eq!(x0.len(), bounds.len(), "start/bounds dimension mismatch");
        let n = x0.len();
        let mut x = x0.to_vec();
        bounds.project(&mut x);

        let mut grad = vec![0.0; n];
        let mut hess = vec![0.0; n * n];
        let mut value = f.value(&x);
        if !value.is_finite() {
            return Solution::new(x, value, 0, SolverOutcome::NonFinite);
        }
        let eval_pair = |x: &[f64], grad: &mut [f64], hess: &mut [f64]| {
            let _grad_span = span(sink, "gradient");
            f.gradient_and_curvature(x, grad, hess);
            sink.record(Event::GradientEval {
                dim: grad.len() as u64,
                threads: 1,
            });
        };
        eval_pair(&x, &mut grad, &mut hess);
        if !finite(&grad) || !finite(&hess) {
            return Solution::new(x, value, 0, SolverOutcome::NonFinite);
        }

        // BB curvature estimate for the damping scale; seeded like the
        // spectral method's initial step (1 / σ).
        let mut sigma = grad.iter().map(|g| g.abs()).fold(1e-12, f64::max);
        let mut lambda = self.lambda_init;
        let mut factor = vec![0.0; n * n];
        let mut p = vec![0.0; n];
        let mut p_free = vec![0.0; n];
        let mut free: Vec<usize> = Vec::with_capacity(n);
        let mut trial = vec![0.0; n];
        let mut s = vec![0.0; n];
        let mut grad_prev = vec![0.0; n];
        // Batched-ladder scratch, allocated once and only when batching
        // is on.
        let batch = self.batch_width;
        let mut cand_pts = Vec::new();
        let mut cand_dec = Vec::new();
        let mut cand_val = Vec::new();
        if batch >= 2 {
            cand_pts.reserve(batch * n);
            cand_dec.reserve(batch);
            cand_val.reserve(batch);
        }

        for iter in 0..self.max_iterations {
            let _iter_span = span(sink, "iteration");
            let pg_norm = (0..n)
                .map(|i| {
                    let t = (x[i] - grad[i]).clamp(bounds.lower()[i], bounds.upper()[i]);
                    (t - x[i]).abs()
                })
                .fold(0.0, f64::max);
            sink.record(Event::SolverIteration {
                iteration: iter as u64,
                value,
                residual: pg_norm,
                step: lambda,
            });
            if pg_norm < self.tolerance {
                return Solution::new(x, value, iter, SolverOutcome::Converged);
            }
            if deadline.is_some_and(|d| d.expired()) {
                return Solution::new(x, value, iter, SolverOutcome::DeadlineReached);
            }

            // Bertsekas-style active-set reduction: coordinates pinned
            // at a bound with the gradient pushing outward stay pinned
            // for this iteration and leave the Newton system. Without
            // this, a clipped full-space Newton direction need not be a
            // descent direction and the projected line search stalls.
            // (Projection clamps exactly onto the bound, so the at-bound
            // test is an exact comparison.)
            free.clear();
            for i in 0..n {
                let at_lo = x[i] <= bounds.lower()[i] && grad[i] > 0.0;
                let at_hi = x[i] >= bounds.upper()[i] && grad[i] < 0.0;
                if !(at_lo || at_hi) {
                    free.push(i);
                }
            }
            // Every pinned coordinate contributes zero to the projected
            // gradient, so a non-converged iterate has free coordinates.
            let nf = free.len();
            debug_assert!(nf > 0);

            // Factor the free block of H + λ·D, escalating λ until the
            // Cholesky succeeds (it must eventually: D is strictly
            // positive, so large λ dominates any PSD H short of
            // non-finite entries).
            loop {
                for (r, &fi) in free.iter().enumerate() {
                    for (c, &fj) in free.iter().enumerate() {
                        factor[r * nf + c] = hess[fi * n + fj];
                    }
                    factor[r * nf + r] += lambda * hess[fi * n + fi].max(sigma);
                }
                if cholesky_in_place(&mut factor, nf) {
                    break;
                }
                lambda *= 10.0;
                if !lambda.is_finite() || lambda > self.lambda_max {
                    return Solution::new(x, value, iter, SolverOutcome::Stalled);
                }
            }
            for (r, &fi) in free.iter().enumerate() {
                p_free[r] = -grad[fi];
            }
            cholesky_solve(&factor, nf, &mut p_free[..nf]);
            p.fill(0.0);
            for (r, &fi) in free.iter().enumerate() {
                p[fi] = p_free[r];
            }

            // Projected backtracking along x + α·p, monotone Armijo.
            let line_search = span(sink, "line_search");
            let mut alpha = 1.0;
            let mut accepted = false;
            let mut full_step = false;
            let mut f_trial = value;
            let mut decrease0 = 0.0;
            if batch >= 2 {
                // Speculative batched ladder: the scalar halving ladder's
                // candidates in groups of `batch`, evaluated through one
                // `value_batch` call and scanned in ladder order with the
                // identical acceptance test — the accepted point (left in
                // `trial`, which the trust-ratio update reads) is the one
                // the scalar loop would pick, bit for bit.
                let mut tried = 0usize;
                'ladder: while tried < 30 {
                    cand_pts.clear();
                    cand_dec.clear();
                    for _ in 0..batch {
                        if tried == 30 {
                            break;
                        }
                        for i in 0..n {
                            trial[i] = x[i] + alpha * p[i];
                        }
                        bounds.project(&mut trial);
                        let decrease: f64 = (0..n).map(|i| grad[i] * (x[i] - trial[i])).sum();
                        if tried == 0 {
                            decrease0 = decrease;
                        }
                        cand_pts.extend_from_slice(&trial);
                        cand_dec.push(decrease);
                        tried += 1;
                        alpha *= 0.5;
                    }
                    if cand_dec.is_empty() {
                        break;
                    }
                    cand_val.clear();
                    cand_val.resize(cand_dec.len(), 0.0);
                    f.value_batch(&cand_pts, n, &mut cand_val);
                    for (j, (&f_t, &decrease)) in cand_val.iter().zip(&cand_dec).enumerate() {
                        if f_t.is_finite()
                            && decrease > 0.0
                            && f_t <= value - self.armijo * decrease
                        {
                            accepted = true;
                            full_step = tried - cand_dec.len() + j == 0;
                            f_trial = f_t;
                            trial.copy_from_slice(&cand_pts[j * n..(j + 1) * n]);
                            break 'ladder;
                        }
                    }
                }
            } else {
                for ls_iter in 0..30 {
                    for i in 0..n {
                        trial[i] = x[i] + alpha * p[i];
                    }
                    bounds.project(&mut trial);
                    let decrease: f64 = (0..n).map(|i| grad[i] * (x[i] - trial[i])).sum();
                    if ls_iter == 0 {
                        decrease0 = decrease;
                    }
                    f_trial = f.value(&trial);
                    if f_trial.is_finite()
                        && decrease > 0.0
                        && f_trial <= value - self.armijo * decrease
                    {
                        accepted = true;
                        full_step = ls_iter == 0;
                        break;
                    }
                    alpha *= 0.5;
                }
            }
            line_search.close();
            if !accepted {
                // No acceptable point at this trust radius. Classify a
                // near-tolerance stall as convergence — the same
                // convention [`crate::ProjectedGradient`] applies when
                // its line search exhausts float resolution — otherwise
                // shrink the trust radius (grow λ) and retry from the
                // same iterate.
                if pg_norm < self.tolerance * 100.0 {
                    return Solution::new(x, value, iter, SolverOutcome::Converged);
                }
                // No certifiable descent at float resolution: if even
                // the *linear* model of the full damped step promises
                // less than `ftol·|f|`, every shorter backtrack promises
                // strictly less, and the promise is already below the
                // ULP of the objective — further λ escalation only
                // shrinks it. This is MINPACK-style ftol termination.
                if decrease0.max(0.0) <= self.ftol * value.abs() {
                    return Solution::new(x, value, iter, SolverOutcome::Converged);
                }
                lambda *= 10.0;
                if !lambda.is_finite() || lambda > self.lambda_max {
                    return Solution::new(x, value, iter, SolverOutcome::Stalled);
                }
                continue;
            }

            // Trust management on the actual-vs-predicted reduction
            // ratio (classic Levenberg–Marquardt): only an accurate
            // quadratic model earns a smaller λ; a poor one raises it
            // even though the (monotone) step is kept. This is what
            // keeps the method stable when the Gauss-Newton matrix
            // misses real curvature — λ settles at the level where the
            // model can be trusted instead of oscillating between pure
            // Newton overshoot and full rejection.
            let mut sts = 0.0;
            let mut gts = 0.0;
            let mut sths = 0.0;
            for i in 0..n {
                s[i] = trial[i] - x[i];
                sts += s[i] * s[i];
                gts += grad[i] * s[i];
            }
            for i in 0..n {
                let hs: f64 = (0..n).map(|j| hess[i * n + j] * s[j]).sum();
                sths += s[i] * hs;
            }
            let predicted = -(gts + 0.5 * sths);
            let rho = if predicted > 0.0 {
                (value - f_trial) / predicted
            } else {
                0.0
            };
            grad_prev.copy_from_slice(&grad);
            x.copy_from_slice(&trial);
            value = f_trial;
            eval_pair(&x, &mut grad, &mut hess);
            if !finite(&grad) || !finite(&hess) {
                return Solution::new(x, value, iter + 1, SolverOutcome::NonFinite);
            }
            let mut sty = 0.0;
            for i in 0..n {
                sty += s[i] * (grad[i] - grad_prev[i]);
            }
            if sts > 0.0 && sty > 0.0 {
                sigma = (sty / sts).clamp(1e-12, 1e12);
            }
            if rho > 0.75 && full_step {
                lambda = (lambda / 3.0).max(self.lambda_min);
            } else if rho < 0.25 {
                lambda = (lambda * 2.0).min(self.lambda_max);
            }
        }
        Solution::new(
            x,
            value,
            self.max_iterations,
            SolverOutcome::BudgetExhausted,
        )
    }
}

fn finite(v: &[f64]) -> bool {
    v.iter().all(|x| x.is_finite())
}

/// In-place Cholesky `A = L·Lᵀ` of a row-major symmetric matrix (lower
/// triangle written, upper left stale). Returns `false` — leaving the
/// buffer partially factored — if a pivot is non-positive or non-finite,
/// which the caller treats as "raise the damping and retry".
fn cholesky_in_place(a: &mut [f64], n: usize) -> bool {
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= a[i * n + k] * a[j * n + k];
            }
            if i == j {
                if sum <= 1e-300 || !sum.is_finite() {
                    return false;
                }
                a[i * n + i] = sum.sqrt();
            } else {
                a[i * n + j] = sum / a[j * n + j];
            }
        }
    }
    true
}

/// Solves `L·Lᵀ·x = b` in place given the factor from
/// [`cholesky_in_place`].
fn cholesky_solve(l: &[f64], n: usize, b: &mut [f64]) {
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * b[k];
        }
        b[i] = sum / l[i * n + i];
    }
    for i in (0..n).rev() {
        let mut sum = b[i];
        for k in i + 1..n {
            sum -= l[k * n + i] * b[k];
        }
        b[i] = sum / l[i * n + i];
    }
}

/// A dense linear least-squares objective
/// `f(x) = Σᵢ (aᵢᵀx − bᵢ)²` with its exact Gauss-Newton pair
/// (`∇f = 2Aᵀ(Ax − b)`, `H = 2AᵀA` — exact, since the residuals are
/// linear). The synthetic rig for the Gauss-Newton parity suite, also
/// handy as a reference [`CurvatureObjective`] implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseLeastSquares {
    cols: usize,
    a: Vec<f64>,
    b: Vec<f64>,
}

impl DenseLeastSquares {
    /// Builds the objective from a row-major `rows × cols` matrix `a`
    /// and a `rows`-vector `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a.len()` is not a multiple of `cols` or `b` does not
    /// match the row count.
    pub fn new(cols: usize, a: Vec<f64>, b: Vec<f64>) -> Self {
        assert!(cols > 0, "cols must be positive");
        assert_eq!(a.len() % cols, 0, "matrix shape mismatch");
        assert_eq!(a.len() / cols, b.len(), "rhs length mismatch");
        Self { cols, a, b }
    }

    fn residual(&self, x: &[f64], row: usize) -> f64 {
        let a = &self.a[row * self.cols..(row + 1) * self.cols];
        a.iter().zip(x).map(|(ai, xi)| ai * xi).sum::<f64>() - self.b[row]
    }
}

impl Objective for DenseLeastSquares {
    fn value(&self, x: &[f64]) -> f64 {
        (0..self.b.len()).map(|r| self.residual(x, r).powi(2)).sum()
    }

    fn gradient(&self, x: &[f64], grad: &mut [f64]) {
        grad.fill(0.0);
        for r in 0..self.b.len() {
            let res = self.residual(x, r);
            let a = &self.a[r * self.cols..(r + 1) * self.cols];
            for (g, ai) in grad.iter_mut().zip(a) {
                *g += 2.0 * res * ai;
            }
        }
    }
}

impl CurvatureObjective for DenseLeastSquares {
    fn gradient_and_curvature(&self, x: &[f64], grad: &mut [f64], hess: &mut [f64]) {
        self.gradient(x, grad);
        hess.fill(0.0);
        let n = self.cols;
        for r in 0..self.b.len() {
            let a = &self.a[r * n..(r + 1) * n];
            for i in 0..n {
                for j in 0..n {
                    hess[i * n + j] += 2.0 * a[i] * a[j];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Deadline, VirtualClock};
    use crate::projected::ProjectedGradient;

    /// A diagonal bowl `Σ sᵢ(xᵢ − cᵢ)²` as a least-squares system.
    fn bowl(scales: &[f64], center: &[f64]) -> DenseLeastSquares {
        let n = scales.len();
        let mut a = vec![0.0; n * n];
        let mut b = vec![0.0; n];
        for i in 0..n {
            a[i * n + i] = scales[i].sqrt();
            b[i] = scales[i].sqrt() * center[i];
        }
        DenseLeastSquares::new(n, a, b)
    }

    #[test]
    fn quadratic_bowl_matches_projected_gradient_in_fewer_iterations() {
        let f = bowl(&[1.0, 4.0, 9.0], &[0.3, -0.7, 0.5]);
        let bounds = Bounds::uniform(3, -2.0, 2.0);
        let x0 = [1.5, 1.5, -1.5];
        let gn = GaussNewton::default().minimize(&f, &bounds, &x0);
        let pg = ProjectedGradient::default().minimize_sync(&f, &bounds, &x0);
        assert_eq!(gn.outcome, SolverOutcome::Converged, "{gn:?}");
        assert_eq!(pg.outcome, SolverOutcome::Converged, "{pg:?}");
        for (a, b) in gn.x.iter().zip(&pg.x) {
            assert!((a - b).abs() < 1e-7, "minimisers diverge: {gn:?} vs {pg:?}");
        }
        assert!(
            gn.iterations < pg.iterations,
            "GN took {} iterations, PG {}",
            gn.iterations,
            pg.iterations
        );
    }

    #[test]
    fn ill_conditioned_valley_converges_far_faster_than_first_order() {
        // Condition number 1e4: spectral descent grinds, Newton does not.
        let f = bowl(&[1.0, 100.0, 10_000.0], &[0.9, -0.4, 0.2]);
        let bounds = Bounds::uniform(3, -1.0, 1.0);
        let x0 = [-0.8, 0.8, -0.8];
        let gn = GaussNewton::default().minimize(&f, &bounds, &x0);
        let pg = ProjectedGradient::default().minimize_sync(&f, &bounds, &x0);
        assert_eq!(gn.outcome, SolverOutcome::Converged, "{gn:?}");
        for (a, want) in gn.x.iter().zip([0.9, -0.4, 0.2]) {
            assert!((a - want).abs() < 1e-8, "{gn:?}");
        }
        assert!(
            gn.iterations < pg.iterations,
            "GN {} vs PG {}",
            gn.iterations,
            pg.iterations
        );
    }

    #[test]
    fn clamp_active_corner_is_found_and_agrees_with_projected_gradient() {
        // Unconstrained minimiser (3, -2) lies outside the unit box; both
        // solvers must land on the active-set corner (1, -1).
        let f = bowl(&[50.0, 1.0], &[3.0, -2.0]);
        let bounds = Bounds::uniform(2, -1.0, 1.0);
        let gn = GaussNewton::default().minimize(&f, &bounds, &[0.0, 0.0]);
        let pg = ProjectedGradient::default().minimize_sync(&f, &bounds, &[0.0, 0.0]);
        assert_eq!(gn.outcome, SolverOutcome::Converged, "{gn:?}");
        assert!((gn.x[0] - 1.0).abs() < 1e-8 && (gn.x[1] + 1.0).abs() < 1e-8);
        for (a, b) in gn.x.iter().zip(&pg.x) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn singular_curvature_falls_back_gracefully() {
        // Rank-1 system in 2 variables: JᵀJ is singular; the σ-floored
        // damping must keep every step finite and still reach a
        // minimiser of the (flat-valley) objective.
        let f = DenseLeastSquares::new(2, vec![1.0, 1.0], vec![1.0]);
        let bounds = Bounds::uniform(2, -2.0, 2.0);
        let gn = GaussNewton::default().minimize(&f, &bounds, &[1.5, -1.8]);
        assert!(gn.x.iter().all(|v| v.is_finite()), "{gn:?}");
        assert!(gn.value < 1e-12, "residual not eliminated: {gn:?}");
        assert!((gn.x[0] + gn.x[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_residual_start_converges_immediately() {
        // Starting exactly at the minimiser: gradient is zero, the
        // solver must declare convergence at iteration 0 without a step.
        let f = bowl(&[2.0, 3.0], &[0.25, -0.5]);
        let gn = GaussNewton::default().minimize(&f, &Bounds::uniform(2, -1.0, 1.0), &[0.25, -0.5]);
        assert_eq!(gn.outcome, SolverOutcome::Converged);
        assert_eq!(gn.iterations, 0);
    }

    #[test]
    fn non_finite_objective_is_surfaced_structurally() {
        struct Bad;
        impl std::fmt::Debug for Bad {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("Bad")
            }
        }
        impl Objective for Bad {
            fn value(&self, _: &[f64]) -> f64 {
                f64::NAN
            }
        }
        impl CurvatureObjective for Bad {
            fn gradient_and_curvature(&self, _: &[f64], g: &mut [f64], h: &mut [f64]) {
                g.fill(0.0);
                h.fill(0.0);
            }
        }
        let gn = GaussNewton::default().minimize(&Bad, &Bounds::uniform(1, -1.0, 1.0), &[0.5]);
        assert_eq!(gn.outcome, SolverOutcome::NonFinite);
        assert_eq!(gn.iterations, 0);
        assert!(gn.x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn zero_budget_deadline_returns_projected_warm_start() {
        let f = bowl(&[1.0, 1.0], &[5.0, -5.0]);
        let clock = VirtualClock::new();
        let deadline = Deadline::after(&clock, 0);
        let gn = GaussNewton::default().minimize_within(
            &f,
            &Bounds::uniform(2, -1.0, 1.0),
            &[3.0, 0.5],
            &NullSink,
            Some(&deadline),
        );
        assert_eq!(gn.outcome, SolverOutcome::DeadlineReached);
        assert_eq!(gn.iterations, 0);
        assert_eq!(gn.x, vec![1.0, 0.5]);
        assert!(gn.value.is_finite());
    }

    #[test]
    fn deadline_runs_are_bit_identical() {
        let f = bowl(&[1.0, 100.0, 10_000.0], &[0.9, -0.4, 0.2]);
        let bounds = Bounds::uniform(3, -1.0, 1.0);
        let run = || {
            let clock = VirtualClock::with_tick(1);
            let deadline = Deadline::after(&clock, 3);
            GaussNewton::default().minimize_within(
                &f,
                &bounds,
                &[-0.8, 0.8, -0.8],
                &NullSink,
                Some(&deadline),
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(
            a.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn observed_solve_traces_every_iteration() {
        use otem_telemetry::MemorySink;
        let f = bowl(&[1.0, 100.0], &[0.3, -0.3]);
        let sink = MemorySink::new();
        let gn = GaussNewton::default().minimize_within(
            &f,
            &Bounds::uniform(2, -1.0, 1.0),
            &[0.9, 0.9],
            &sink,
            None,
        );
        assert_eq!(gn.outcome, SolverOutcome::Converged);
        // One iteration event per outer iteration plus the terminal one;
        // rejected trust radii re-run the iteration counter, so the
        // event count is at least that.
        assert!(sink.count_kind("solver_iteration") > gn.iterations);
        assert!(sink.count_kind("gradient_eval") >= 1);
    }

    #[test]
    fn batched_line_search_is_bit_identical_to_scalar() {
        // Box clamps force backtracking, exercising multi-rung ladders.
        let f = bowl(&[1.0, 100.0, 10_000.0], &[0.9, -0.4, 0.2]);
        let bounds = Bounds::uniform(3, -1.0, 1.0);
        let x0 = [-0.8, 0.8, -0.8];
        let scalar = GaussNewton::default().minimize(&f, &bounds, &x0);
        for width in [2, 4, 7] {
            let solver = GaussNewton {
                batch_width: width,
                ..GaussNewton::default()
            };
            let batched = solver.minimize(&f, &bounds, &x0);
            assert_eq!(batched.iterations, scalar.iterations, "width = {width}");
            assert_eq!(batched.outcome, scalar.outcome, "width = {width}");
            assert_eq!(
                batched.value.to_bits(),
                scalar.value.to_bits(),
                "width = {width}"
            );
            assert_eq!(
                batched.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                scalar.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "width = {width}"
            );
        }
    }

    #[test]
    fn cholesky_round_trips_a_spd_system() {
        // A = Lᵀ·L for L = [[2,0],[1,3]] → A = [[4,2],[2,10]].
        let mut a = vec![4.0, 2.0, 2.0, 10.0];
        assert!(cholesky_in_place(&mut a, 2));
        let mut b = vec![8.0, 26.0]; // A·[1,2]ᵀ + ... solve for known rhs
        cholesky_solve(&a, 2, &mut b);
        // A·x = [8,26] → x = [1, 2.4]: 4x+2y=8, 2x+10y=26 → y=2.4? check:
        // from first: 2x + y = 4; second: x + 5y = 13 → x = 4 - ... solve:
        // x = (4 - y/1)/... direct: x = (8 - 2y)/4; 2(8-2y)/4 + 10y = 26
        // → 4 - y + 10y = 26 → 9y = 22 → y = 22/9, x = (8 - 44/9)/4 = 7/9.
        assert!((b[0] - 7.0 / 9.0).abs() < 1e-12, "{b:?}");
        assert!((b[1] - 22.0 / 9.0).abs() < 1e-12, "{b:?}");
    }

    #[test]
    fn indefinite_matrix_is_rejected_by_the_factorisation() {
        let mut a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, -1
        assert!(!cholesky_in_place(&mut a, 2));
    }
}
