//! Time sources and deadlines for *anytime* solves.
//!
//! Real-time MPC treats per-step compute budget as a first-class
//! constraint: a solve that overruns its slot is worse than a slightly
//! less converged iterate delivered on time. The solvers here therefore
//! accept an optional [`Deadline`] and return
//! [`SolverOutcome::DeadlineReached`](crate::SolverOutcome::DeadlineReached)
//! with the best feasible iterate when it expires.
//!
//! Wall-clock assertions are untestable in CI, so the time source is a
//! pluggable [`Clock`] trait: production uses [`MonotonicClock`]
//! (backed by [`std::time::Instant`]); tests use [`VirtualClock`], whose
//! reading only moves when the test advances it (optionally by a fixed
//! tick per read), making deadline behaviour bit-reproducible.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond time source.
///
/// Implementations must be monotone non-decreasing; the absolute origin
/// is arbitrary (deadlines are computed as `now + budget` against the
/// same clock).
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds since this clock's (arbitrary) origin.
    fn now_ns(&self) -> u64;
}

/// The production time source: nanoseconds since construction, via
/// [`std::time::Instant`].
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // u64 nanoseconds cover ~584 years of process uptime.
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A deterministic test clock: reads return a counter that only moves
/// when the test says so — either explicitly via
/// [`VirtualClock::advance`] or automatically by a fixed tick per read
/// ([`VirtualClock::with_tick`]), which models "every clock check costs
/// a fixed amount of work" without any real time passing.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now: AtomicU64,
    tick: u64,
}

impl VirtualClock {
    /// A clock frozen at 0 until [`VirtualClock::advance`] is called.
    pub fn new() -> Self {
        Self::default()
    }

    /// A clock that auto-advances by `tick_ns` *after* every read, so
    /// the `k`-th read returns `k · tick_ns` deterministically.
    pub fn with_tick(tick_ns: u64) -> Self {
        Self {
            now: AtomicU64::new(0),
            tick: tick_ns,
        }
    }

    /// Moves the clock forward by `ns`.
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::SeqCst);
    }
}

impl Clock for VirtualClock {
    fn now_ns(&self) -> u64 {
        self.now.fetch_add(self.tick, Ordering::SeqCst)
    }
}

/// An absolute expiry instant against a specific [`Clock`].
///
/// Built from a relative budget with [`Deadline::after`]; solvers poll
/// [`Deadline::expired`] once per outer iteration (convergence is
/// checked first, so a solve that meets tolerance on the deadline
/// iteration still reports `Converged`).
#[derive(Debug, Clone, Copy)]
pub struct Deadline<'a> {
    clock: &'a dyn Clock,
    expires_ns: u64,
}

impl<'a> Deadline<'a> {
    /// A deadline `budget_ns` nanoseconds from the clock's current
    /// reading. A zero budget is already expired at the next read.
    pub fn after(clock: &'a dyn Clock, budget_ns: u64) -> Self {
        Self {
            clock,
            expires_ns: clock.now_ns().saturating_add(budget_ns),
        }
    }

    /// Whether the clock has reached the expiry instant.
    pub fn expired(&self) -> bool {
        self.clock.now_ns() >= self.expires_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_monotone() {
        let clock = MonotonicClock::new();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_is_frozen_until_advanced() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now_ns(), 0);
        assert_eq!(clock.now_ns(), 0);
        clock.advance(7);
        assert_eq!(clock.now_ns(), 7);
    }

    #[test]
    fn ticking_clock_advances_per_read() {
        let clock = VirtualClock::with_tick(10);
        assert_eq!(clock.now_ns(), 0);
        assert_eq!(clock.now_ns(), 10);
        clock.advance(5);
        assert_eq!(clock.now_ns(), 25);
    }

    #[test]
    fn zero_budget_deadline_is_immediately_expired() {
        let clock = VirtualClock::new();
        let deadline = Deadline::after(&clock, 0);
        assert!(deadline.expired());
    }

    #[test]
    fn deadline_expires_exactly_on_the_boundary() {
        let clock = VirtualClock::new();
        let deadline = Deadline::after(&clock, 100);
        assert!(!deadline.expired());
        clock.advance(99);
        assert!(!deadline.expired());
        clock.advance(1);
        assert!(deadline.expired());
    }

    #[test]
    fn saturating_budget_never_wraps() {
        let clock = VirtualClock::new();
        clock.advance(u64::MAX - 10);
        let deadline = Deadline::after(&clock, u64::MAX);
        assert!(!deadline.expired());
    }
}
