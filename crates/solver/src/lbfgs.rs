//! Limited-memory BFGS with Armijo backtracking for smooth unconstrained
//! minimisation.

use crate::objective::{GradientMode, Objective};
use crate::solution::{Solution, SolverOutcome};
use otem_telemetry::{span, Event, NullSink, Sink};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// L-BFGS minimiser (two-loop recursion, Armijo backtracking).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Lbfgs {
    /// Maximum iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on the gradient infinity norm.
    pub tolerance: f64,
    /// Number of curvature pairs retained.
    pub history: usize,
    /// Armijo sufficient-decrease parameter.
    pub armijo: f64,
    /// Gradient evaluation strategy used by [`Lbfgs::minimize_sync`]
    /// (ignored by [`Lbfgs::minimize`], which cannot assume `Sync`).
    pub gradient_mode: GradientMode,
    /// Line-search batching width: `0` or `1` evaluates trial points
    /// one at a time; `≥ 2` prefetches the pure-backtracking ladder
    /// `t ∈ {1, ½, ¼, …}` (that many rungs) through one
    /// [`Objective::value_batch`] call into a cache keyed by the step
    /// length's bit pattern. The weak-Wolfe bisection control flow is
    /// unchanged — a cache hit returns exactly what the scalar
    /// evaluation would (the batch contract), a miss (once the
    /// curvature branch moves `t` off the ladder) falls through to a
    /// scalar evaluation — so iterates are bit-identical.
    pub batch_width: usize,
}

impl Default for Lbfgs {
    fn default() -> Self {
        Self {
            max_iterations: 500,
            tolerance: 1e-8,
            history: 10,
            armijo: 1e-4,
            gradient_mode: GradientMode::Serial,
            batch_width: 0,
        }
    }
}

impl Lbfgs {
    /// Minimises `f` from the starting point `x0`.
    pub fn minimize<F: Objective + ?Sized>(&self, f: &F, x0: &[f64]) -> Solution {
        self.minimize_with_grad(f, x0, &NullSink, |x, g| f.gradient(x, g))
    }

    /// Like [`Lbfgs::minimize`] but for `Sync` objectives, honouring
    /// [`Lbfgs::gradient_mode`] — with [`GradientMode::Parallel`] each
    /// gradient evaluation fans its coordinates out across scoped
    /// threads, bit-identical to the serial path.
    pub fn minimize_sync<F: Objective + Sync>(&self, f: &F, x0: &[f64]) -> Solution {
        self.minimize_sync_observed(f, x0, &NullSink)
    }

    /// [`Lbfgs::minimize_sync`] with telemetry: emits one
    /// [`Event::SolverIteration`] per outer iteration and one
    /// [`Event::GradientEval`] per gradient evaluation into `sink`.
    /// Observation only — iterates are bit-identical to the unobserved
    /// path for any sink.
    pub fn minimize_sync_observed<F: Objective + Sync>(
        &self,
        f: &F,
        x0: &[f64],
        sink: &dyn Sink,
    ) -> Solution {
        let threads = self.gradient_mode.worker_threads() as u64;
        self.minimize_with_grad(f, x0, sink, |x, g| {
            let _grad_span = span(sink, "gradient");
            f.gradient_with(x, g, self.gradient_mode);
            sink.record(Event::GradientEval {
                dim: g.len() as u64,
                threads,
            });
        })
    }

    fn minimize_with_grad<F: Objective + ?Sized>(
        &self,
        f: &F,
        x0: &[f64],
        sink: &dyn Sink,
        mut gradient: impl FnMut(&[f64], &mut [f64]),
    ) -> Solution {
        let n = x0.len();
        let mut x = x0.to_vec();
        let mut grad = vec![0.0; n];
        let mut value = f.value(&x);
        if !value.is_finite() {
            // Corrupt problem data: surface it structurally instead of
            // letting the line search stall on NaN comparisons.
            return Solution::new(x, value, 0, SolverOutcome::NonFinite);
        }
        gradient(&x, &mut grad);
        if grad.iter().any(|g| !g.is_finite()) {
            return Solution::new(x, value, 0, SolverOutcome::NonFinite);
        }

        let mut pairs: VecDeque<(Vec<f64>, Vec<f64>, f64)> = VecDeque::new();
        // Step length accepted by the previous iteration's line search
        // (reported by the iteration telemetry; 0 before any search).
        let mut last_step = 0.0;
        // Solver workspace, allocated once: the direction and two-loop
        // coefficients plus the line search's trial point and gradient.
        // Re-allocating these per iteration dominated the solver's heap
        // traffic when the gradient itself stopped allocating.
        let mut d = vec![0.0; n];
        let mut alphas: Vec<f64> = Vec::with_capacity(self.history);
        let mut trial = vec![0.0; n];
        let mut new_grad = vec![0.0; n];
        // Curvature-pair scratch: the accepted (s, y) is staged here and
        // then copied into buffers recycled from the evicted history
        // entry, so a full window updates without touching the heap.
        let mut s_new = vec![0.0; n];
        let mut y_new = vec![0.0; n];
        // Prefetch-cache scratch for the batched line search, allocated
        // once and only when batching is on.
        let batch = self.batch_width;
        let mut pf_pts = Vec::new();
        let mut pf_keys: Vec<u64> = Vec::new();
        let mut pf_vals = Vec::new();
        if batch >= 2 {
            pf_pts.reserve(batch * n);
            pf_keys.reserve(batch);
            pf_vals.reserve(batch);
        }

        for iter in 0..self.max_iterations {
            let _iter_span = span(sink, "iteration");
            let gnorm = grad.iter().map(|g| g.abs()).fold(0.0, f64::max);
            sink.record(Event::SolverIteration {
                iteration: iter as u64,
                value,
                residual: gnorm,
                step: last_step,
            });
            if gnorm < self.tolerance {
                return Solution::new(x, value, iter, SolverOutcome::Converged);
            }

            // Two-loop recursion for d = −H·g.
            for i in 0..n {
                d[i] = -grad[i];
            }
            alphas.clear();
            for (s, y, rho) in pairs.iter().rev() {
                let a = rho * dot(s, &d);
                for i in 0..n {
                    d[i] -= a * y[i];
                }
                alphas.push(a);
            }
            if let Some((s, y, _)) = pairs.back() {
                let scale = dot(s, y) / dot(y, y).max(1e-300);
                for di in &mut d {
                    *di *= scale;
                }
            }
            for ((s, y, rho), a) in pairs.iter().zip(alphas.iter().copied().rev()) {
                let b = rho * dot(y, &d);
                for i in 0..n {
                    d[i] += (a - b) * s[i];
                }
            }

            // Descent check; fall back to steepest descent if needed.
            let mut dir_deriv = dot(&grad, &d);
            if dir_deriv >= 0.0 {
                for i in 0..n {
                    d[i] = -grad[i];
                }
                dir_deriv = -dot(&grad, &grad);
            }

            // Weak-Wolfe line search (Lewis–Overton bisection): the
            // curvature condition guarantees sᵀy > 0, keeping the inverse
            // Hessian approximation fresh even on nonconvex terrain.
            let c2 = 0.9;
            let mut t = 1.0;
            let mut lo = 0.0;
            let mut hi = f64::INFINITY;
            let mut accepted = false;
            // Covers the bisection and the salvage evaluation below —
            // both are line-search work; closes at iteration end or on
            // the stall return, balanced either way by RAII.
            let _line_search = span(sink, "line_search");
            if batch >= 2 {
                // Prefetch the pure-backtracking ladder: as long as only
                // the Armijo branch fires, `t` walks 1, ½, ¼, … — exactly
                // these points, evaluated in one batched pass. The
                // bisection below consumes them by cache hit; once the
                // curvature branch moves `t` off the ladder it falls back
                // to scalar evaluations.
                pf_pts.clear();
                pf_keys.clear();
                let mut tt = 1.0f64;
                for _ in 0..batch {
                    for i in 0..n {
                        trial[i] = x[i] + tt * d[i];
                    }
                    pf_pts.extend_from_slice(&trial);
                    pf_keys.push(tt.to_bits());
                    tt *= 0.5;
                }
                pf_vals.clear();
                pf_vals.resize(pf_keys.len(), 0.0);
                f.value_batch(&pf_pts, n, &mut pf_vals);
            }
            for _ in 0..60 {
                for i in 0..n {
                    trial[i] = x[i] + t * d[i];
                }
                let f_trial = if batch >= 2 {
                    match pf_keys.iter().position(|&k| k == t.to_bits()) {
                        Some(j) => pf_vals[j],
                        None => f.value(&trial),
                    }
                } else {
                    f.value(&trial)
                };
                if f_trial > value + self.armijo * t * dir_deriv {
                    hi = t;
                    t = 0.5 * (lo + hi);
                    continue;
                }
                gradient(&trial, &mut new_grad);
                if dot(&new_grad, &d) < c2 * dir_deriv {
                    lo = t;
                    t = if hi.is_finite() {
                        0.5 * (lo + hi)
                    } else {
                        2.0 * t
                    };
                    continue;
                }
                for i in 0..n {
                    s_new[i] = trial[i] - x[i];
                    y_new[i] = new_grad[i] - grad[i];
                }
                let sy = dot(&s_new, &y_new);
                if sy > 1e-300 {
                    // Recycle the evicted entry's buffers: once the
                    // history window is full, curvature updates stop
                    // touching the heap. Eviction only happens when a
                    // pair is actually pushed, as before.
                    let (mut s, mut y, _) = if pairs.len() == self.history {
                        pairs.pop_front().expect("window is full")
                    } else {
                        (vec![0.0; n], vec![0.0; n], 0.0)
                    };
                    s.copy_from_slice(&s_new);
                    y.copy_from_slice(&y_new);
                    pairs.push_back((s, y, 1.0 / sy));
                }
                x.copy_from_slice(&trial);
                value = f_trial;
                grad.copy_from_slice(&new_grad);
                last_step = t;
                accepted = true;
                break;
            }
            if !accepted {
                // Bisection exhausted: take the last Armijo point if any
                // progress is possible, otherwise report the best seen.
                for i in 0..n {
                    trial[i] = x[i] + t * d[i];
                }
                let f_trial = f.value(&trial);
                if f_trial < value {
                    gradient(&trial, &mut new_grad);
                    x.copy_from_slice(&trial);
                    value = f_trial;
                    grad.copy_from_slice(&new_grad);
                    last_step = t;
                } else {
                    // Bisection made no progress: report the iterations
                    // actually performed and a structured reason.
                    let outcome = if !value.is_finite() {
                        SolverOutcome::NonFinite
                    } else if gnorm < self.tolerance * 100.0 {
                        SolverOutcome::Converged
                    } else {
                        SolverOutcome::Stalled
                    };
                    return Solution::new(x, value, iter, outcome);
                }
            }
        }
        Solution::new(
            x,
            value,
            self.max_iterations,
            SolverOutcome::BudgetExhausted,
        )
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;

    #[test]
    fn quadratic_bowl() {
        let f = FnObjective::new(|x: &[f64]| (x[0] - 2.0).powi(2) + 5.0 * (x[1] + 1.0).powi(2));
        let sol = Lbfgs::default().minimize(&f, &[10.0, -10.0]);
        assert!(sol.converged());
        assert!((sol.x[0] - 2.0).abs() < 1e-6);
        assert!((sol.x[1] + 1.0).abs() < 1e-6);
    }

    #[test]
    fn rosenbrock_2d_converges_fast() {
        let f = FnObjective::new(|x: &[f64]| {
            100.0 * (x[1] - x[0] * x[0]).powi(2) + (1.0 - x[0]).powi(2)
        });
        let sol = Lbfgs::default().minimize(&f, &[-1.2, 1.0]);
        assert!(sol.converged(), "{sol:?}");
        assert!((sol.x[0] - 1.0).abs() < 1e-5);
        assert!((sol.x[1] - 1.0).abs() < 1e-5);
        assert!(sol.iterations < 200, "took {}", sol.iterations);
    }

    #[test]
    fn rosenbrock_10d() {
        let f = FnObjective::new(|x: &[f64]| {
            x.windows(2)
                .map(|w| 100.0 * (w[1] - w[0] * w[0]).powi(2) + (1.0 - w[0]).powi(2))
                .sum()
        });
        let solver = Lbfgs {
            max_iterations: 2000,
            ..Lbfgs::default()
        };
        let sol = solver.minimize(&f, &[-1.2; 10]);
        for (i, v) in sol.x.iter().enumerate() {
            assert!((v - 1.0).abs() < 1e-4, "x[{i}] = {v}");
        }
    }

    #[test]
    fn already_optimal_returns_immediately() {
        let f = FnObjective::new(|x: &[f64]| x[0] * x[0]);
        let sol = Lbfgs::default().minimize(&f, &[0.0]);
        assert!(sol.converged());
        assert_eq!(sol.iterations, 0);
    }

    #[test]
    fn parallel_mode_yields_bit_identical_solutions() {
        let f = FnObjective::new(|x: &[f64]| {
            x.windows(2)
                .map(|w| 100.0 * (w[1] - w[0] * w[0]).powi(2) + (1.0 - w[0]).powi(2))
                .sum::<f64>()
        });
        let x0 = [-1.2, 1.0, -0.7, 0.4];
        let serial = Lbfgs::default().minimize_sync(&f, &x0);
        for threads in [2, 4] {
            let solver = Lbfgs {
                gradient_mode: crate::GradientMode::Parallel { threads },
                ..Lbfgs::default()
            };
            let parallel = solver.minimize_sync(&f, &x0);
            assert_eq!(
                parallel.iterations, serial.iterations,
                "threads = {threads}"
            );
            assert_eq!(
                parallel.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                serial.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn observed_solve_is_bit_identical_and_traces_iterations() {
        use otem_telemetry::{Event, MemorySink};
        let f = FnObjective::new(|x: &[f64]| {
            100.0 * (x[1] - x[0] * x[0]).powi(2) + (1.0 - x[0]).powi(2)
        });
        let x0 = [-1.2, 1.0];
        let plain = Lbfgs::default().minimize_sync(&f, &x0);
        let sink = MemorySink::new();
        let observed = Lbfgs::default().minimize_sync_observed(&f, &x0, &sink);
        assert_eq!(observed.iterations, plain.iterations);
        assert_eq!(
            observed.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            plain.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(sink.count_kind("solver_iteration"), observed.iterations + 1);
        // The residual trace must be the gradient norm, ending below
        // tolerance on the terminal iteration.
        let last = sink
            .events()
            .into_iter()
            .rev()
            .find_map(|e| match e {
                Event::SolverIteration { residual, .. } => Some(residual),
                _ => None,
            })
            .expect("iterations recorded");
        assert!(
            last < Lbfgs::default().tolerance,
            "terminal residual {last}"
        );
    }

    #[test]
    fn batched_prefetch_is_bit_identical_to_scalar() {
        let f = FnObjective::new(|x: &[f64]| {
            x.windows(2)
                .map(|w| 100.0 * (w[1] - w[0] * w[0]).powi(2) + (1.0 - w[0]).powi(2))
                .sum::<f64>()
        });
        let x0 = [-1.2, 1.0, -0.7, 0.4];
        let scalar = Lbfgs::default().minimize(&f, &x0);
        for width in [2, 4] {
            let solver = Lbfgs {
                batch_width: width,
                ..Lbfgs::default()
            };
            let batched = solver.minimize(&f, &x0);
            assert_eq!(batched.iterations, scalar.iterations, "width = {width}");
            assert_eq!(batched.outcome, scalar.outcome, "width = {width}");
            assert_eq!(
                batched.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                scalar.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "width = {width}"
            );
        }
    }

    #[test]
    fn ill_conditioned_quadratic() {
        let f = FnObjective::new(|x: &[f64]| {
            x.iter()
                .enumerate()
                .map(|(i, &v)| 10f64.powi(i as i32) * v * v)
                .sum()
        });
        let sol = Lbfgs::default().minimize(&f, &[1.0; 6]);
        assert!(sol.value < 1e-10, "{sol:?}");
    }
}
