//! Projected Barzilai–Borwein spectral gradient descent for
//! box-constrained smooth minimisation — the workhorse behind the OTEM
//! MPC's per-step solve.

use crate::bounds::Bounds;
use crate::clock::Deadline;
use crate::objective::{GradientMode, Objective};
use crate::solution::{Solution, SolverOutcome};
use otem_telemetry::{span, Event, NullSink, Sink};
use serde::{Deserialize, Serialize};

/// Projected spectral (Barzilai–Borwein) gradient method with a
/// non-monotone Armijo safeguard (Birgin–Martínez–Raydan SPG).
///
/// Robust on the moderately ill-conditioned, smooth, box-constrained
/// problems the MPC transcription produces, with no linear algebra
/// beyond dot products.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProjectedGradient {
    /// Maximum outer iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on the projected-gradient infinity norm.
    pub tolerance: f64,
    /// Armijo sufficient-decrease parameter.
    pub armijo: f64,
    /// History window for the non-monotone line search.
    pub memory: usize,
    /// Safeguards on the BB step length.
    pub step_min: f64,
    /// Upper safeguard on the BB step length.
    pub step_max: f64,
    /// Gradient evaluation strategy used by
    /// [`ProjectedGradient::minimize_sync`] (ignored by
    /// [`ProjectedGradient::minimize`], which cannot assume `Sync`).
    pub gradient_mode: GradientMode,
    /// Line-search batching width: `0` or `1` runs the scalar Armijo
    /// backtracking ladder; `≥ 2` speculatively evaluates groups of
    /// that many step-size candidates through one
    /// [`Objective::value_batch`] call and scans them in ladder order
    /// with the identical acceptance test. The accepted iterate — and
    /// therefore the whole solve trajectory — is **bit-identical** to
    /// the scalar ladder; only the number of (speculative) objective
    /// evaluations differs.
    pub batch_width: usize,
}

impl Default for ProjectedGradient {
    fn default() -> Self {
        Self {
            max_iterations: 400,
            tolerance: 1e-8,
            armijo: 1e-4,
            memory: 8,
            step_min: 1e-12,
            step_max: 1e10,
            gradient_mode: GradientMode::Serial,
            batch_width: 0,
        }
    }
}

impl ProjectedGradient {
    /// Minimises `f` over the box from the starting point `x0`
    /// (projected into the box first).
    ///
    /// # Panics
    ///
    /// Panics if `x0.len() != bounds.len()`.
    pub fn minimize<F: Objective + ?Sized>(&self, f: &F, bounds: &Bounds, x0: &[f64]) -> Solution {
        self.minimize_with_grad(f, bounds, x0, &NullSink, None, |x, g| f.gradient(x, g))
    }

    /// Like [`ProjectedGradient::minimize`] but for `Sync` objectives,
    /// honouring [`ProjectedGradient::gradient_mode`] — with
    /// [`GradientMode::Parallel`] each gradient evaluation fans its
    /// coordinates out across scoped threads. The iterates are
    /// bit-identical to the serial path for any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `x0.len() != bounds.len()`.
    pub fn minimize_sync<F: Objective + Sync>(
        &self,
        f: &F,
        bounds: &Bounds,
        x0: &[f64],
    ) -> Solution {
        self.minimize_sync_observed(f, bounds, x0, &NullSink)
    }

    /// [`ProjectedGradient::minimize_sync`] with telemetry: emits one
    /// [`Event::SolverIteration`] per outer iteration and one
    /// [`Event::GradientEval`] per gradient evaluation into `sink`.
    /// Observation only — the iterates are bit-identical to
    /// [`ProjectedGradient::minimize_sync`] for any sink.
    ///
    /// # Panics
    ///
    /// Panics if `x0.len() != bounds.len()`.
    pub fn minimize_sync_observed<F: Objective + Sync>(
        &self,
        f: &F,
        bounds: &Bounds,
        x0: &[f64],
        sink: &dyn Sink,
    ) -> Solution {
        self.minimize_sync_within(f, bounds, x0, sink, None)
    }

    /// The *anytime* entry point: [`ProjectedGradient::minimize_sync_observed`]
    /// with an optional [`Deadline`]. The deadline is polled once per
    /// outer iteration, *after* the convergence check (meeting tolerance
    /// on the deadline iteration still reports
    /// [`SolverOutcome::Converged`]); on expiry the best iterate seen so
    /// far is returned with [`SolverOutcome::DeadlineReached`] — always
    /// finite and inside the box, and for a zero budget exactly the
    /// projected warm start with `iterations == 0`.
    ///
    /// # Panics
    ///
    /// Panics if `x0.len() != bounds.len()`.
    pub fn minimize_sync_within<F: Objective + Sync>(
        &self,
        f: &F,
        bounds: &Bounds,
        x0: &[f64],
        sink: &dyn Sink,
        deadline: Option<&Deadline<'_>>,
    ) -> Solution {
        let threads = self.gradient_mode.worker_threads() as u64;
        self.minimize_with_grad(f, bounds, x0, sink, deadline, |x, g| {
            let _grad_span = span(sink, "gradient");
            f.gradient_with(x, g, self.gradient_mode);
            sink.record(Event::GradientEval {
                dim: g.len() as u64,
                threads,
            });
        })
    }

    fn minimize_with_grad<F: Objective + ?Sized>(
        &self,
        f: &F,
        bounds: &Bounds,
        x0: &[f64],
        sink: &dyn Sink,
        deadline: Option<&Deadline<'_>>,
        mut gradient: impl FnMut(&[f64], &mut [f64]),
    ) -> Solution {
        assert_eq!(x0.len(), bounds.len(), "start/bounds dimension mismatch");
        let n = x0.len();
        let mut x = x0.to_vec();
        bounds.project(&mut x);

        let mut grad = vec![0.0; n];
        let mut value = f.value(&x);
        if !value.is_finite() {
            // Corrupt problem data (e.g. a NaN in the forecast window):
            // surface it structurally instead of silently stalling.
            return Solution::new(x, value, 0, SolverOutcome::NonFinite);
        }
        gradient(&x, &mut grad);
        if grad.iter().any(|g| !g.is_finite()) {
            return Solution::new(x, value, 0, SolverOutcome::NonFinite);
        }

        let mut history = std::collections::VecDeque::with_capacity(self.memory);
        history.push_back(value);

        let mut step = 1.0 / grad.iter().map(|g| g.abs()).fold(1e-12, f64::max);
        let mut x_prev = x.clone();
        let mut grad_prev = grad.clone();
        // Line-search trial point, allocated once for the whole solve —
        // the backtracking loop below runs up to 40 times per iteration.
        let mut trial = vec![0.0; n];
        // Batched-ladder scratch (candidate matrix, predicted decreases,
        // batched values), allocated once and only when batching is on.
        let batch = self.batch_width;
        let mut cand_pts = Vec::new();
        let mut cand_dec = Vec::new();
        let mut cand_val = Vec::new();
        if batch >= 2 {
            cand_pts.reserve(batch * n);
            cand_dec.reserve(batch);
            cand_val.reserve(batch);
        }

        for iter in 0..self.max_iterations {
            let _iter_span = span(sink, "iteration");
            // Projected-gradient stationarity measure.
            let pg_norm = (0..n)
                .map(|i| {
                    let trial = (x[i] - grad[i]).clamp(bounds.lower()[i], bounds.upper()[i]);
                    (trial - x[i]).abs()
                })
                .fold(0.0, f64::max);
            sink.record(Event::SolverIteration {
                iteration: iter as u64,
                value,
                residual: pg_norm,
                step,
            });
            if pg_norm < self.tolerance {
                return Solution::new(x, value, iter, SolverOutcome::Converged);
            }
            // The deadline is polled after the convergence check so a
            // solve that meets tolerance exactly on the budget boundary
            // still reports success; `x` is the best accepted iterate
            // (the projected warm start at iter 0), so the anytime
            // contract — finite, in-box, no worse than the start —
            // holds by construction.
            if deadline.is_some_and(|d| d.expired()) {
                return Solution::new(x, value, iter, SolverOutcome::DeadlineReached);
            }

            // Trial point along the projected BB direction with
            // non-monotone backtracking.
            let f_ref = history.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mut alpha = step.clamp(self.step_min, self.step_max);
            let mut accepted = false;
            let line_search = span(sink, "line_search");
            if batch >= 2 {
                // Speculative batched ladder: materialise up to `batch`
                // candidates of the scalar halving ladder, evaluate them
                // in one `value_batch` call, and scan in ladder order
                // with the scalar acceptance test. Identical candidate
                // points + identical test ⇒ the accepted iterate is the
                // one the scalar loop would pick, bit for bit.
                let mut tried = 0usize;
                'ladder: loop {
                    cand_pts.clear();
                    cand_dec.clear();
                    // `true` once the ladder is exhausted (40-candidate
                    // cap or the step_min cut) within this group.
                    let mut exhausted = false;
                    for _ in 0..batch {
                        if tried == 40 {
                            exhausted = true;
                            break;
                        }
                        for i in 0..n {
                            trial[i] = x[i] - alpha * grad[i];
                        }
                        bounds.project(&mut trial);
                        let decrease: f64 = (0..n).map(|i| grad[i] * (x[i] - trial[i])).sum();
                        cand_pts.extend_from_slice(&trial);
                        cand_dec.push(decrease);
                        tried += 1;
                        alpha *= 0.5;
                        if alpha < self.step_min {
                            exhausted = true;
                            break;
                        }
                    }
                    if cand_dec.is_empty() {
                        break;
                    }
                    cand_val.clear();
                    cand_val.resize(cand_dec.len(), 0.0);
                    f.value_batch(&cand_pts, n, &mut cand_val);
                    for (j, (&f_trial, &decrease)) in cand_val.iter().zip(&cand_dec).enumerate() {
                        if f_trial <= f_ref - self.armijo * decrease.max(0.0) {
                            x_prev.copy_from_slice(&x);
                            grad_prev.copy_from_slice(&grad);
                            x.copy_from_slice(&cand_pts[j * n..(j + 1) * n]);
                            value = f_trial;
                            accepted = true;
                            break 'ladder;
                        }
                    }
                    if exhausted {
                        break;
                    }
                }
            } else {
                for _ in 0..40 {
                    for i in 0..n {
                        trial[i] = x[i] - alpha * grad[i];
                    }
                    bounds.project(&mut trial);
                    let decrease: f64 = (0..n).map(|i| grad[i] * (x[i] - trial[i])).sum();
                    let f_trial = f.value(&trial);
                    if f_trial <= f_ref - self.armijo * decrease.max(0.0) {
                        x_prev.copy_from_slice(&x);
                        grad_prev.copy_from_slice(&grad);
                        x.copy_from_slice(&trial);
                        value = f_trial;
                        accepted = true;
                        break;
                    }
                    alpha *= 0.5;
                    if alpha < self.step_min {
                        break;
                    }
                }
            }
            line_search.close();
            if !accepted {
                // Line search stalled: accept the best known point,
                // reporting the iterations actually performed — not the
                // configured budget — and a structured reason.
                let outcome = if !value.is_finite() {
                    SolverOutcome::NonFinite
                } else if pg_norm < self.tolerance * 100.0 {
                    SolverOutcome::Converged
                } else {
                    SolverOutcome::Stalled
                };
                return Solution::new(x, value, iter, outcome);
            }

            gradient(&x, &mut grad);
            if history.len() == self.memory {
                history.pop_front();
            }
            history.push_back(value);

            // BB1 step from the last displacement pair.
            let mut sty = 0.0;
            let mut sts = 0.0;
            for i in 0..n {
                let s = x[i] - x_prev[i];
                let y = grad[i] - grad_prev[i];
                sty += s * y;
                sts += s * s;
            }
            step = if sty > 1e-300 {
                (sts / sty).clamp(self.step_min, self.step_max)
            } else {
                (step * 2.0).clamp(self.step_min, self.step_max)
            };
        }
        Solution::new(
            x,
            value,
            self.max_iterations,
            SolverOutcome::BudgetExhausted,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;

    #[test]
    fn unconstrained_quadratic() {
        let f = FnObjective::new(|x: &[f64]| (x[0] - 1.0).powi(2) + 10.0 * (x[1] + 2.0).powi(2));
        let sol = ProjectedGradient::default().minimize(&f, &Bounds::unbounded(2), &[5.0, 5.0]);
        assert!(sol.converged(), "{sol:?}");
        assert!((sol.x[0] - 1.0).abs() < 1e-5);
        assert!((sol.x[1] + 2.0).abs() < 1e-5);
    }

    #[test]
    fn active_box_constraint() {
        // Minimum at x = 3 but box caps at 2.
        let f = FnObjective::new(|x: &[f64]| (x[0] - 3.0).powi(2));
        let sol = ProjectedGradient::default().minimize(&f, &Bounds::uniform(1, -1.0, 2.0), &[0.0]);
        assert!((sol.x[0] - 2.0).abs() < 1e-8, "{sol:?}");
    }

    #[test]
    fn rosenbrock_2d() {
        let f = FnObjective::new(|x: &[f64]| {
            100.0 * (x[1] - x[0] * x[0]).powi(2) + (1.0 - x[0]).powi(2)
        });
        let solver = ProjectedGradient {
            max_iterations: 5000,
            tolerance: 1e-10,
            ..ProjectedGradient::default()
        };
        let sol = solver.minimize(&f, &Bounds::unbounded(2), &[-1.2, 1.0]);
        assert!((sol.x[0] - 1.0).abs() < 1e-4, "{sol:?}");
        assert!((sol.x[1] - 1.0).abs() < 1e-4, "{sol:?}");
    }

    #[test]
    fn high_dimensional_convex() {
        let n = 50;
        let f = FnObjective::new(move |x: &[f64]| {
            x.iter()
                .enumerate()
                .map(|(i, &v)| (i as f64 + 1.0) * (v - 0.5).powi(2))
                .sum()
        });
        let sol =
            ProjectedGradient::default().minimize(&f, &Bounds::uniform(n, 0.0, 1.0), &vec![0.0; n]);
        for (i, v) in sol.x.iter().enumerate() {
            assert!((v - 0.5).abs() < 1e-4, "coordinate {i} = {v}");
        }
    }

    #[test]
    fn starts_outside_box_are_projected() {
        let f = FnObjective::new(|x: &[f64]| x[0] * x[0]);
        let sol =
            ProjectedGradient::default().minimize(&f, &Bounds::uniform(1, -1.0, 1.0), &[50.0]);
        assert!(sol.x[0].abs() < 1e-8);
    }

    #[test]
    fn budget_exhaustion_reports_not_converged() {
        let f = FnObjective::new(|x: &[f64]| {
            100.0 * (x[1] - x[0] * x[0]).powi(2) + (1.0 - x[0]).powi(2)
        });
        let solver = ProjectedGradient {
            max_iterations: 3,
            tolerance: 1e-14,
            ..ProjectedGradient::default()
        };
        let sol = solver.minimize(&f, &Bounds::unbounded(2), &[-1.2, 1.0]);
        assert_eq!(sol.outcome, SolverOutcome::BudgetExhausted);
        assert!(!sol.converged());
        assert_eq!(sol.iterations, 3);
    }

    #[test]
    fn zero_iteration_budget_reports_starved_not_full_budget() {
        // A starved solve must report the iterations actually performed
        // (zero), not the configured budget.
        let f = FnObjective::new(|x: &[f64]| (x[0] - 1.0).powi(2));
        let solver = ProjectedGradient {
            max_iterations: 0,
            ..ProjectedGradient::default()
        };
        let sol = solver.minimize(&f, &Bounds::unbounded(1), &[5.0]);
        assert_eq!(sol.iterations, 0);
        assert_eq!(sol.outcome, SolverOutcome::BudgetExhausted);
    }

    #[test]
    fn non_finite_objective_is_surfaced_structurally() {
        let f = FnObjective::new(|_: &[f64]| f64::NAN);
        let sol =
            ProjectedGradient::default().minimize(&f, &Bounds::uniform(2, -1.0, 1.0), &[0.5, 0.5]);
        assert_eq!(sol.outcome, SolverOutcome::NonFinite);
        assert_eq!(sol.iterations, 0);
        assert!(sol.value.is_nan());
        // The returned point is the projected start, still finite.
        assert!(sol.x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn non_finite_gradient_is_surfaced_structurally() {
        use crate::objective::FnObjectiveWithGrad;
        let f = FnObjectiveWithGrad::new(
            |x: &[f64]| x[0] * x[0],
            |_: &[f64], g: &mut [f64]| g.fill(f64::INFINITY),
        );
        let sol = ProjectedGradient::default().minimize(&f, &Bounds::uniform(1, -1.0, 1.0), &[0.5]);
        assert_eq!(sol.outcome, SolverOutcome::NonFinite);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let f = FnObjective::new(|x: &[f64]| x[0]);
        ProjectedGradient::default().minimize(&f, &Bounds::uniform(2, 0.0, 1.0), &[0.0]);
    }

    #[test]
    fn parallel_mode_yields_bit_identical_solutions() {
        let f = FnObjective::new(|x: &[f64]| {
            x.windows(2)
                .map(|w| 100.0 * (w[1] - w[0] * w[0]).powi(2) + (1.0 - w[0]).powi(2))
                .sum::<f64>()
        });
        let bounds = Bounds::uniform(6, -2.0, 2.0);
        let x0 = [-1.2, 1.0, -0.5, 0.3, 1.5, -1.0];
        let serial = ProjectedGradient::default().minimize_sync(&f, &bounds, &x0);
        for threads in [2, 3, 4, 8] {
            let solver = ProjectedGradient {
                gradient_mode: crate::GradientMode::Parallel { threads },
                ..ProjectedGradient::default()
            };
            let parallel = solver.minimize_sync(&f, &bounds, &x0);
            assert_eq!(
                parallel.iterations, serial.iterations,
                "threads = {threads}"
            );
            assert_eq!(
                parallel.value.to_bits(),
                serial.value.to_bits(),
                "threads = {threads}"
            );
            assert_eq!(
                parallel.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                serial.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn observed_solve_is_bit_identical_and_traces_every_iteration() {
        use otem_telemetry::MemorySink;
        let f = FnObjective::new(|x: &[f64]| {
            100.0 * (x[1] - x[0] * x[0]).powi(2) + (1.0 - x[0]).powi(2)
        });
        let bounds = Bounds::uniform(2, -2.0, 2.0);
        let x0 = [-1.2, 1.0];
        let plain = ProjectedGradient::default().minimize_sync(&f, &bounds, &x0);

        let sink = MemorySink::new();
        let observed = ProjectedGradient::default().minimize_sync_observed(&f, &bounds, &x0, &sink);
        assert_eq!(observed.iterations, plain.iterations);
        assert_eq!(observed.value.to_bits(), plain.value.to_bits());
        assert_eq!(
            observed.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            plain.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        // One iteration event per outer iteration, plus the terminal
        // iteration that observed convergence before returning.
        assert_eq!(sink.count_kind("solver_iteration"), observed.iterations + 1);
        // One gradient per accepted iterate plus the initial gradient.
        assert_eq!(sink.count_kind("gradient_eval"), observed.iterations + 1);
    }

    #[test]
    fn zero_budget_deadline_returns_projected_warm_start() {
        use crate::clock::{Deadline, VirtualClock};
        // Interior optimum (x = 1), so the projected warm start x = 2 is
        // *not* a stationary point and a zero budget really does truncate.
        let f = FnObjective::new(|x: &[f64]| (x[0] - 1.0).powi(2));
        let clock = VirtualClock::new();
        let deadline = Deadline::after(&clock, 0);
        let sol = ProjectedGradient::default().minimize_sync_within(
            &f,
            &Bounds::uniform(1, -1.0, 2.0),
            &[5.0],
            &otem_telemetry::NullSink,
            Some(&deadline),
        );
        assert_eq!(sol.outcome, SolverOutcome::DeadlineReached);
        assert_eq!(sol.iterations, 0);
        // The returned point is the warm start projected into the box.
        assert_eq!(sol.x, vec![2.0]);
        assert!(sol.value.is_finite());
    }

    #[test]
    fn virtual_deadline_truncates_the_iterate_stream_deterministically() {
        use crate::clock::{Deadline, VirtualClock};
        let f = FnObjective::new(|x: &[f64]| {
            100.0 * (x[1] - x[0] * x[0]).powi(2) + (1.0 - x[0]).powi(2)
        });
        let bounds = Bounds::uniform(2, -2.0, 2.0);
        let x0 = [-1.2, 1.0];
        let unbounded = ProjectedGradient::default().minimize_sync(&f, &bounds, &x0);
        assert!(unbounded.iterations > 10, "rig must need many iterations");

        // One tick per clock read: `after` consumes the first read, and
        // the poll at iteration k reads `k + 1`, so a 5-tick budget
        // expires at iteration 4 — deterministically, every run.
        let run = || {
            let clock = VirtualClock::with_tick(1);
            let deadline = Deadline::after(&clock, 5);
            ProjectedGradient::default().minimize_sync_within(
                &f,
                &bounds,
                &x0,
                &otem_telemetry::NullSink,
                Some(&deadline),
            )
        };
        let a = run();
        assert_eq!(a.outcome, SolverOutcome::DeadlineReached);
        assert_eq!(a.iterations, 4);
        assert!(a.value <= f.value(&x0), "anytime iterate must not regress");
        let b = run();
        assert_eq!(
            a.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(a.value.to_bits(), b.value.to_bits());
    }

    #[test]
    fn convergence_beats_the_deadline_on_the_boundary_iteration() {
        use crate::clock::{Deadline, VirtualClock};
        // Converges at iteration 2 (two accepted BB steps); a budget of
        // 3 ticks expires exactly there, but the convergence check runs
        // first and must win.
        let f = FnObjective::new(|x: &[f64]| (x[0] - 1.0).powi(2));
        let clock = VirtualClock::with_tick(1);
        let deadline = Deadline::after(&clock, 3);
        let sol = ProjectedGradient::default().minimize_sync_within(
            &f,
            &Bounds::unbounded(1),
            &[5.0],
            &otem_telemetry::NullSink,
            Some(&deadline),
        );
        assert_eq!(sol.outcome, SolverOutcome::Converged, "{sol:?}");
    }

    #[test]
    fn batched_line_search_is_bit_identical_to_scalar() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // A counting objective: verifies the batched path both matches
        // bitwise and actually routes through value_batch.
        struct Counting(AtomicUsize);
        impl Objective for Counting {
            fn value(&self, x: &[f64]) -> f64 {
                x.windows(2)
                    .map(|w| 100.0 * (w[1] - w[0] * w[0]).powi(2) + (1.0 - w[0]).powi(2))
                    .sum::<f64>()
            }
            fn value_batch(&self, points: &[f64], m: usize, out: &mut [f64]) {
                self.0.fetch_add(1, Ordering::Relaxed);
                for (z, o) in points.chunks_exact(m).zip(out.iter_mut()) {
                    *o = self.value(z);
                }
            }
        }
        let bounds = Bounds::uniform(6, -2.0, 2.0);
        let x0 = [-1.2, 1.0, -0.5, 0.3, 1.5, -1.0];
        let f = Counting(AtomicUsize::new(0));
        let scalar = ProjectedGradient::default().minimize(&f, &bounds, &x0);
        assert_eq!(f.0.load(Ordering::Relaxed), 0, "scalar path must not batch");
        for width in [2, 3, 8] {
            let solver = ProjectedGradient {
                batch_width: width,
                ..ProjectedGradient::default()
            };
            let batched = solver.minimize(&f, &bounds, &x0);
            assert_eq!(batched.iterations, scalar.iterations, "width = {width}");
            assert_eq!(batched.outcome, scalar.outcome, "width = {width}");
            assert_eq!(
                batched.value.to_bits(),
                scalar.value.to_bits(),
                "width = {width}"
            );
            assert_eq!(
                batched.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                scalar.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "width = {width}"
            );
        }
        assert!(
            f.0.load(Ordering::Relaxed) > 0,
            "batched solves must route through value_batch"
        );
    }

    #[test]
    fn minimize_sync_matches_minimize_in_serial_mode() {
        let f = FnObjective::new(|x: &[f64]| (x[0] - 1.0).powi(2) + (x[1] + 2.0).powi(2));
        let bounds = Bounds::unbounded(2);
        let a = ProjectedGradient::default().minimize(&f, &bounds, &[5.0, 5.0]);
        let b = ProjectedGradient::default().minimize_sync(&f, &bounds, &[5.0, 5.0]);
        assert_eq!(a.x, b.x);
        assert_eq!(a.value.to_bits(), b.value.to_bits());
    }
}
