//! Augmented-Lagrangian treatment of general equality/inequality
//! constraints over a box-constrained inner solver.

use crate::bounds::Bounds;
use crate::objective::Objective;
use crate::projected::ProjectedGradient;
use crate::solution::{Solution, SolverOutcome};

/// A boxed constraint function `g: Rⁿ → R`.
pub type ConstraintFn = Box<dyn Fn(&[f64]) -> f64 + Send + Sync>;

/// A scalar constraint on the decision vector.
pub enum Constraint {
    /// `g(x) = 0`.
    Equality(ConstraintFn),
    /// `g(x) ≤ 0`.
    Inequality(ConstraintFn),
}

impl std::fmt::Debug for Constraint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Equality(_) => f.write_str("Constraint::Equality(..)"),
            Self::Inequality(_) => f.write_str("Constraint::Inequality(..)"),
        }
    }
}

impl Constraint {
    /// Builds an equality constraint `g(x) = 0`.
    pub fn equality(g: impl Fn(&[f64]) -> f64 + Send + Sync + 'static) -> Self {
        Self::Equality(Box::new(g))
    }

    /// Builds an inequality constraint `g(x) ≤ 0`.
    pub fn inequality(g: impl Fn(&[f64]) -> f64 + Send + Sync + 'static) -> Self {
        Self::Inequality(Box::new(g))
    }

    fn evaluate(&self, x: &[f64]) -> f64 {
        match self {
            Self::Equality(g) | Self::Inequality(g) => g(x),
        }
    }

    /// Constraint violation magnitude at `x`.
    pub fn violation(&self, x: &[f64]) -> f64 {
        match self {
            Self::Equality(g) => g(x).abs(),
            Self::Inequality(g) => g(x).max(0.0),
        }
    }
}

/// A constrained problem: objective + box + general constraints
/// (the shape of the paper's Eq. 18).
pub struct ConstrainedProblem<'a, F: Objective> {
    /// The objective to minimise.
    pub objective: &'a F,
    /// Box constraints on the decision vector.
    pub bounds: Bounds,
    /// General constraints.
    pub constraints: Vec<Constraint>,
}

impl<F: Objective> std::fmt::Debug for ConstrainedProblem<'_, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConstrainedProblem")
            .field("bounds", &self.bounds)
            .field("constraints", &self.constraints.len())
            .finish()
    }
}

/// Classic augmented-Lagrangian (method of multipliers) outer loop around
/// [`ProjectedGradient`] inner solves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AugmentedLagrangian {
    /// Outer (multiplier-update) iterations.
    pub outer_iterations: usize,
    /// Initial penalty weight.
    pub initial_penalty: f64,
    /// Penalty growth factor when violation stalls.
    pub penalty_growth: f64,
    /// Feasibility tolerance on the maximum violation.
    pub feasibility_tolerance: f64,
    /// Inner box-constrained solver.
    pub inner: ProjectedGradient,
}

impl Default for AugmentedLagrangian {
    fn default() -> Self {
        Self {
            outer_iterations: 20,
            initial_penalty: 10.0,
            penalty_growth: 5.0,
            feasibility_tolerance: 1e-6,
            inner: ProjectedGradient::default(),
        }
    }
}

impl AugmentedLagrangian {
    /// Solves the constrained problem from `x0`. A
    /// [`SolverOutcome::Converged`] result means the final point is
    /// feasible to tolerance; [`SolverOutcome::Stalled`] means the outer
    /// budget ran out while still infeasible.
    pub fn minimize<F: Objective>(
        &self,
        problem: &ConstrainedProblem<'_, F>,
        x0: &[f64],
    ) -> Solution {
        let m = problem.constraints.len();
        let mut lambda = vec![0.0; m]; // multipliers (≥ 0 for inequalities)
        let mut mu = self.initial_penalty;
        let mut x = x0.to_vec();
        problem.bounds.project(&mut x);
        let mut last_violation = f64::INFINITY;
        let mut iterations = 0;

        for _ in 0..self.outer_iterations {
            let lambda_snapshot = lambda.clone();
            let augmented = AugmentedObjective {
                objective: problem.objective,
                constraints: &problem.constraints,
                lambda: lambda_snapshot,
                mu,
            };
            let sol = self.inner.minimize(&augmented, &problem.bounds, &x);
            x = sol.x;
            iterations += sol.iterations;

            let violation = problem
                .constraints
                .iter()
                .map(|c| c.violation(&x))
                .fold(0.0, f64::max);

            if violation < self.feasibility_tolerance {
                let value = problem.objective.value(&x);
                return Solution::new(x, value, iterations, SolverOutcome::Converged);
            }

            // Multiplier updates.
            for (i, c) in problem.constraints.iter().enumerate() {
                let g = c.evaluate(&x);
                lambda[i] = match c {
                    Constraint::Equality(_) => lambda[i] + mu * g,
                    Constraint::Inequality(_) => (lambda[i] + mu * g).max(0.0),
                };
            }
            // Grow the penalty when feasibility is not improving fast.
            if violation > 0.25 * last_violation {
                mu *= self.penalty_growth;
            }
            last_violation = violation;
        }
        let value = problem.objective.value(&x);
        let feasible = problem
            .constraints
            .iter()
            .all(|c| c.violation(&x) < self.feasibility_tolerance * 10.0);
        Solution::new(
            x,
            value,
            iterations,
            if feasible {
                SolverOutcome::Converged
            } else {
                SolverOutcome::Stalled
            },
        )
    }
}

struct AugmentedObjective<'a, F: Objective> {
    objective: &'a F,
    constraints: &'a [Constraint],
    lambda: Vec<f64>,
    mu: f64,
}

impl<F: Objective> Objective for AugmentedObjective<'_, F> {
    fn value(&self, x: &[f64]) -> f64 {
        let mut total = self.objective.value(x);
        for (i, c) in self.constraints.iter().enumerate() {
            let g = c.evaluate(x);
            match c {
                Constraint::Equality(_) => {
                    total += self.lambda[i] * g + 0.5 * self.mu * g * g;
                }
                Constraint::Inequality(_) => {
                    // Rockafellar form: ((max(0, λ + μ·g))² − λ²) / (2μ)
                    let t = (self.lambda[i] + self.mu * g).max(0.0);
                    total += (t * t - self.lambda[i] * self.lambda[i]) / (2.0 * self.mu);
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;

    #[test]
    fn equality_constrained_projection() {
        // min x² + y²  s.t. x + y = 1  →  (0.5, 0.5)
        let f = FnObjective::new(|x: &[f64]| x[0] * x[0] + x[1] * x[1]);
        let problem = ConstrainedProblem {
            objective: &f,
            bounds: Bounds::unbounded(2),
            constraints: vec![Constraint::equality(|x: &[f64]| x[0] + x[1] - 1.0)],
        };
        let sol = AugmentedLagrangian::default().minimize(&problem, &[0.0, 0.0]);
        assert!(sol.converged(), "{sol:?}");
        assert!((sol.x[0] - 0.5).abs() < 1e-4, "{sol:?}");
        assert!((sol.x[1] - 0.5).abs() < 1e-4);
    }

    #[test]
    fn inactive_inequality_is_free() {
        // min (x−1)²  s.t. x ≤ 5: constraint inactive.
        let f = FnObjective::new(|x: &[f64]| (x[0] - 1.0).powi(2));
        let problem = ConstrainedProblem {
            objective: &f,
            bounds: Bounds::unbounded(1),
            constraints: vec![Constraint::inequality(|x: &[f64]| x[0] - 5.0)],
        };
        let sol = AugmentedLagrangian::default().minimize(&problem, &[4.0]);
        assert!((sol.x[0] - 1.0).abs() < 1e-5, "{sol:?}");
    }

    #[test]
    fn active_inequality_binds() {
        // min (x−3)²  s.t. x ≤ 1  →  x = 1.
        let f = FnObjective::new(|x: &[f64]| (x[0] - 3.0).powi(2));
        let problem = ConstrainedProblem {
            objective: &f,
            bounds: Bounds::unbounded(1),
            constraints: vec![Constraint::inequality(|x: &[f64]| x[0] - 1.0)],
        };
        let sol = AugmentedLagrangian::default().minimize(&problem, &[0.0]);
        assert!((sol.x[0] - 1.0).abs() < 1e-4, "{sol:?}");
    }

    #[test]
    fn mixed_constraints_with_box() {
        // min (x−2)² + (y−2)²  s.t. x + y = 2, x ≥ 0.5 (box), y ≤ 1.2
        // On x + y = 2 the unconstrained projection is (1, 1); feasible.
        let f = FnObjective::new(|x: &[f64]| (x[0] - 2.0).powi(2) + (x[1] - 2.0).powi(2));
        let problem = ConstrainedProblem {
            objective: &f,
            bounds: Bounds::new(vec![0.5, f64::NEG_INFINITY], vec![f64::INFINITY, 1.2]),
            constraints: vec![Constraint::equality(|x: &[f64]| x[0] + x[1] - 2.0)],
        };
        let sol = AugmentedLagrangian::default().minimize(&problem, &[0.5, 0.5]);
        assert!((sol.x[0] + sol.x[1] - 2.0).abs() < 1e-4, "{sol:?}");
        assert!(sol.x[1] <= 1.2 + 1e-6);
    }

    #[test]
    fn violation_reports() {
        let c = Constraint::inequality(|x: &[f64]| x[0] - 1.0);
        assert_eq!(c.violation(&[0.0]), 0.0);
        assert_eq!(c.violation(&[3.0]), 2.0);
        let e = Constraint::equality(|x: &[f64]| x[0]);
        assert_eq!(e.violation(&[-2.0]), 2.0);
    }
}
