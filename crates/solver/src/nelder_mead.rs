//! Derivative-free Nelder–Mead simplex minimiser (fallback for
//! non-smooth objectives).

use crate::objective::Objective;
use crate::solution::{Solution, SolverOutcome};
use serde::{Deserialize, Serialize};

/// Nelder–Mead downhill simplex with the standard
/// reflection/expansion/contraction/shrink coefficients.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NelderMead {
    /// Maximum objective evaluations.
    pub max_evaluations: usize,
    /// Convergence tolerance on the simplex value spread.
    pub tolerance: f64,
    /// Initial simplex edge length (relative to coordinate magnitude).
    pub initial_step: f64,
}

impl Default for NelderMead {
    fn default() -> Self {
        Self {
            max_evaluations: 20_000,
            tolerance: 1e-10,
            initial_step: 0.1,
        }
    }
}

impl NelderMead {
    /// Minimises `f` from the starting point `x0`.
    pub fn minimize<F: Objective + ?Sized>(&self, f: &F, x0: &[f64]) -> Solution {
        let n = x0.len();
        let mut evals = 0;
        let eval = |x: &[f64], evals: &mut usize| {
            *evals += 1;
            f.value(x)
        };

        // Initial simplex: x0 plus a perturbation along each axis.
        let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
        let v0 = eval(x0, &mut evals);
        simplex.push((x0.to_vec(), v0));
        for i in 0..n {
            let mut p = x0.to_vec();
            let h = self.initial_step * p[i].abs().max(1.0);
            p[i] += h;
            let v = eval(&p, &mut evals);
            simplex.push((p, v));
        }

        while evals < self.max_evaluations {
            simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
            let spread = simplex[n].1 - simplex[0].1;
            if spread.abs() < self.tolerance {
                let (x, value) = simplex.swap_remove(0);
                return Solution::new(x, value, evals, SolverOutcome::Converged);
            }

            // Centroid of all but the worst.
            let mut centroid = vec![0.0; n];
            for (p, _) in &simplex[..n] {
                for i in 0..n {
                    centroid[i] += p[i] / n as f64;
                }
            }
            let worst = simplex[n].clone();

            let point_at = |t: f64| -> Vec<f64> {
                (0..n)
                    .map(|i| centroid[i] + t * (centroid[i] - worst.0[i]))
                    .collect()
            };

            let reflected = point_at(1.0);
            let f_r = eval(&reflected, &mut evals);
            if f_r < simplex[0].1 {
                let expanded = point_at(2.0);
                let f_e = eval(&expanded, &mut evals);
                simplex[n] = if f_e < f_r {
                    (expanded, f_e)
                } else {
                    (reflected, f_r)
                };
            } else if f_r < simplex[n - 1].1 {
                simplex[n] = (reflected, f_r);
            } else {
                let contracted = point_at(-0.5);
                let f_c = eval(&contracted, &mut evals);
                if f_c < simplex[n].1 {
                    simplex[n] = (contracted, f_c);
                } else {
                    // Shrink toward the best vertex.
                    let best = simplex[0].0.clone();
                    for (p, v) in simplex.iter_mut().skip(1) {
                        for i in 0..n {
                            p[i] = best[i] + 0.5 * (p[i] - best[i]);
                        }
                        *v = eval(p, &mut evals);
                    }
                }
            }
        }
        simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
        let (x, value) = simplex.swap_remove(0);
        Solution::new(x, value, evals, SolverOutcome::BudgetExhausted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;

    #[test]
    fn quadratic() {
        let f = FnObjective::new(|x: &[f64]| (x[0] - 4.0).powi(2) + (x[1] - 1.0).powi(2));
        let sol = NelderMead::default().minimize(&f, &[0.0, 0.0]);
        assert!(sol.converged());
        assert!((sol.x[0] - 4.0).abs() < 1e-4, "{sol:?}");
        assert!((sol.x[1] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn rosenbrock_2d() {
        let f = FnObjective::new(|x: &[f64]| {
            100.0 * (x[1] - x[0] * x[0]).powi(2) + (1.0 - x[0]).powi(2)
        });
        let sol = NelderMead::default().minimize(&f, &[-1.2, 1.0]);
        assert!((sol.x[0] - 1.0).abs() < 1e-3, "{sol:?}");
    }

    #[test]
    fn non_smooth_objective() {
        // |x| + |y − 2|: no gradient at the optimum; NM still finds it.
        let f = FnObjective::new(|x: &[f64]| x[0].abs() + (x[1] - 2.0).abs());
        let sol = NelderMead::default().minimize(&f, &[3.0, -3.0]);
        assert!(sol.x[0].abs() < 1e-3, "{sol:?}");
        assert!((sol.x[1] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn evaluation_budget_respected() {
        let f = FnObjective::new(|x: &[f64]| x.iter().map(|v| v * v).sum());
        let solver = NelderMead {
            max_evaluations: 50,
            tolerance: 0.0,
            ..NelderMead::default()
        };
        let sol = solver.minimize(&f, &[1.0; 5]);
        assert!(!sol.converged());
        assert!(sol.iterations <= 60); // budget plus the in-flight iteration
    }
}
