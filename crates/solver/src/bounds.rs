//! Box constraints and projection.

use serde::{Deserialize, Serialize};

/// Per-coordinate box constraints `lower ≤ x ≤ upper`.
///
/// ```
/// use otem_solver::Bounds;
/// let b = Bounds::uniform(3, -1.0, 1.0);
/// let mut x = vec![-5.0, 0.2, 9.0];
/// b.project(&mut x);
/// assert_eq!(x, vec![-1.0, 0.2, 1.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bounds {
    lower: Vec<f64>,
    upper: Vec<f64>,
}

impl Bounds {
    /// Builds per-coordinate bounds.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths or any
    /// `lower[i] > upper[i]`.
    pub fn new(lower: Vec<f64>, upper: Vec<f64>) -> Self {
        assert_eq!(lower.len(), upper.len(), "bounds length mismatch");
        for (i, (lo, hi)) in lower.iter().zip(&upper).enumerate() {
            assert!(lo <= hi, "bounds inverted at coordinate {i}: {lo} > {hi}");
        }
        Self { lower, upper }
    }

    /// The same `[lo, hi]` interval for every coordinate.
    pub fn uniform(n: usize, lo: f64, hi: f64) -> Self {
        Self::new(vec![lo; n], vec![hi; n])
    }

    /// Unbounded box (±∞) of dimension `n`.
    pub fn unbounded(n: usize) -> Self {
        Self::new(vec![f64::NEG_INFINITY; n], vec![f64::INFINITY; n])
    }

    /// Problem dimension.
    pub fn len(&self) -> usize {
        self.lower.len()
    }

    /// `true` when the dimension is zero.
    pub fn is_empty(&self) -> bool {
        self.lower.is_empty()
    }

    /// Lower bounds.
    pub fn lower(&self) -> &[f64] {
        &self.lower
    }

    /// Upper bounds.
    pub fn upper(&self) -> &[f64] {
        &self.upper
    }

    /// Projects `x` into the box in place.
    pub fn project(&self, x: &mut [f64]) {
        for i in 0..x.len().min(self.lower.len()) {
            x[i] = x[i].clamp(self.lower[i], self.upper[i]);
        }
    }

    /// `true` when `x` lies inside the box (within `tol`).
    pub fn contains(&self, x: &[f64], tol: f64) -> bool {
        x.iter()
            .zip(self.lower.iter().zip(&self.upper))
            .all(|(&xi, (&lo, &hi))| xi >= lo - tol && xi <= hi + tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_is_idempotent() {
        let b = Bounds::new(vec![0.0, -2.0], vec![1.0, 2.0]);
        let mut x = vec![5.0, -3.0];
        b.project(&mut x);
        assert_eq!(x, vec![1.0, -2.0]);
        let before = x.clone();
        b.project(&mut x);
        assert_eq!(x, before);
        assert!(b.contains(&x, 0.0));
    }

    #[test]
    fn unbounded_box_is_identity() {
        let b = Bounds::unbounded(2);
        let mut x = vec![1e300, -1e300];
        b.project(&mut x);
        assert_eq!(x, vec![1e300, -1e300]);
    }

    #[test]
    #[should_panic(expected = "bounds inverted")]
    fn inverted_bounds_panic() {
        let _ = Bounds::new(vec![1.0], vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_bounds_panic() {
        let _ = Bounds::new(vec![1.0], vec![0.0, 1.0]);
    }
}
