//! A small dense nonlinear-programming toolkit for the OTEM MPC.
//!
//! The OTEM paper formulates its thermal/energy management as a nonlinear
//! program solved at every control step (Eq. 18–19) — in the authors'
//! setup by MATLAB's NLP machinery. This crate provides the equivalent
//! from scratch:
//!
//! * [`Lbfgs`] — limited-memory BFGS with Armijo backtracking for smooth
//!   unconstrained minimisation,
//! * [`ProjectedGradient`] — Barzilai–Borwein spectral gradient descent
//!   projected onto box constraints (the workhorse for the MPC's
//!   single-shooting transcription),
//! * [`NelderMead`] — derivative-free simplex fallback,
//! * [`AugmentedLagrangian`] — converts equality/inequality constraints
//!   into a sequence of box-constrained subproblems,
//! * [`NumericalGradient`] — central finite differences for objectives
//!   without analytic gradients,
//! * [`GaussNewton`] — projected Levenberg–Marquardt over a
//!   [`CurvatureObjective`] (for the MPC: the Gauss-Newton matrix is
//!   assembled from the same adjoint tape as the gradient),
//! * [`Clock`] / [`Deadline`] — pluggable time sources for *anytime*
//!   solves: [`MonotonicClock`] in production, [`VirtualClock`] in tests
//!   (deadline behaviour becomes bit-reproducible).
//!
//! # Examples
//!
//! ```
//! use otem_solver::{Bounds, FnObjective, ProjectedGradient};
//!
//! // minimise (x-3)² + (y+1)² subject to x,y ∈ [0, 2]
//! let objective = FnObjective::new(|x: &[f64]| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2));
//! let bounds = Bounds::uniform(2, 0.0, 2.0);
//! let solution = ProjectedGradient::default().minimize(&objective, &bounds, &[1.0, 1.0]);
//! assert!((solution.x[0] - 2.0).abs() < 1e-6);
//! assert!(solution.x[1].abs() < 1e-6);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod bounds;
mod clock;
mod gauss_newton;
mod lagrangian;
mod lbfgs;
mod nelder_mead;
mod objective;
mod projected;
mod scalar;
mod solution;

pub use bounds::Bounds;
pub use clock::{Clock, Deadline, MonotonicClock, VirtualClock};
pub use gauss_newton::{CurvatureObjective, DenseLeastSquares, GaussNewton};
pub use lagrangian::{AugmentedLagrangian, ConstrainedProblem, Constraint};
pub use lbfgs::Lbfgs;
pub use nelder_mead::NelderMead;
pub use objective::{
    resolve_threads, FnObjective, FnObjectiveWithGrad, GradientMode, NumericalGradient, Objective,
};
pub use projected::ProjectedGradient;
pub use scalar::{brent, golden_section};
pub use solution::{Solution, SolverOutcome};
