//! Solver result type.

use serde::{Deserialize, Serialize};

/// The result of a minimisation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    /// The best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Iterations consumed.
    pub iterations: usize,
    /// Whether the convergence tolerance was met (otherwise the
    /// iteration budget ran out — the point is still the best seen).
    pub converged: bool,
}

impl Solution {
    /// Builds a solution record.
    pub fn new(x: Vec<f64>, value: f64, iterations: usize, converged: bool) -> Self {
        Self {
            x,
            value,
            iterations,
            converged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carries_fields() {
        let s = Solution::new(vec![1.0], 0.5, 10, true);
        assert_eq!(s.x, vec![1.0]);
        assert_eq!(s.value, 0.5);
        assert!(s.converged);
    }
}
