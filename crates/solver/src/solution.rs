//! Solver result types.

use serde::{Deserialize, Serialize};

/// How a minimisation run ended — the structured replacement for a bare
/// `converged` flag, so callers (the MPC supervisor in particular) can
/// distinguish "met tolerance" from "ran out of budget", "line search
/// stalled" and "the objective itself is broken".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolverOutcome {
    /// The convergence tolerance was met.
    Converged,
    /// The iteration budget ran out; the point is the best seen and is
    /// normally still usable (standard for a real-time MPC solve).
    BudgetExhausted,
    /// The line search could make no further progress from the current
    /// iterate (numerically flat or ill-conditioned terrain). The point
    /// is the best seen.
    Stalled,
    /// A non-finite objective value or gradient was encountered — the
    /// problem data is corrupt and the returned point is *not*
    /// trustworthy beyond being the (projected) starting point.
    NonFinite,
    /// The wall-clock (or virtual-clock) deadline expired before the
    /// tolerance was met. The point is the best feasible iterate seen —
    /// the *anytime* contract: finite, inside the box, and at least as
    /// good as the projected warm start.
    DeadlineReached,
}

impl SolverOutcome {
    /// Stable snake_case name (for logs and telemetry).
    pub fn name(self) -> &'static str {
        match self {
            Self::Converged => "converged",
            Self::BudgetExhausted => "budget_exhausted",
            Self::Stalled => "stalled",
            Self::NonFinite => "non_finite",
            Self::DeadlineReached => "deadline_reached",
        }
    }

    /// Whether the returned point is a usable minimiser candidate — every
    /// outcome except [`SolverOutcome::NonFinite`].
    pub fn is_usable(self) -> bool {
        !matches!(self, Self::NonFinite)
    }
}

/// The result of a minimisation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    /// The best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Outer iterations actually performed (not the configured budget).
    pub iterations: usize,
    /// How the run ended.
    pub outcome: SolverOutcome,
}

impl Solution {
    /// Builds a solution record.
    pub fn new(x: Vec<f64>, value: f64, iterations: usize, outcome: SolverOutcome) -> Self {
        Self {
            x,
            value,
            iterations,
            outcome,
        }
    }

    /// Whether the convergence tolerance was met (the legacy boolean
    /// view of [`Solution::outcome`]).
    pub fn converged(&self) -> bool {
        self.outcome == SolverOutcome::Converged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carries_fields() {
        let s = Solution::new(vec![1.0], 0.5, 10, SolverOutcome::Converged);
        assert_eq!(s.x, vec![1.0]);
        assert_eq!(s.value, 0.5);
        assert_eq!(s.iterations, 10);
        assert!(s.converged());
    }

    #[test]
    fn outcome_names_are_stable() {
        assert_eq!(SolverOutcome::Converged.name(), "converged");
        assert_eq!(SolverOutcome::BudgetExhausted.name(), "budget_exhausted");
        assert_eq!(SolverOutcome::Stalled.name(), "stalled");
        assert_eq!(SolverOutcome::NonFinite.name(), "non_finite");
        assert_eq!(SolverOutcome::DeadlineReached.name(), "deadline_reached");
    }

    #[test]
    fn only_non_finite_is_unusable() {
        assert!(SolverOutcome::Converged.is_usable());
        assert!(SolverOutcome::BudgetExhausted.is_usable());
        assert!(SolverOutcome::Stalled.is_usable());
        assert!(SolverOutcome::DeadlineReached.is_usable());
        assert!(!SolverOutcome::NonFinite.is_usable());
    }

    #[test]
    fn non_converged_outcomes_report_false() {
        for outcome in [
            SolverOutcome::BudgetExhausted,
            SolverOutcome::Stalled,
            SolverOutcome::NonFinite,
            SolverOutcome::DeadlineReached,
        ] {
            assert!(!Solution::new(vec![], 0.0, 0, outcome).converged());
        }
    }
}
