//! The objective-function abstraction and finite-difference gradients.

use serde::{Deserialize, Serialize};

/// How a solver evaluates gradients.
///
/// Central finite differences evaluate each coordinate independently, so
/// the work parallelises with **bit-identical** results: every coordinate
/// performs the same two evaluations at the same perturbed points whether
/// it runs on one thread or many. [`GradientMode::Parallel`] fans the
/// coordinates out across scoped threads ([`std::thread::scope`] — no
/// runtime dependency) and is worthwhile when a single objective
/// evaluation is expensive, as with the MPC rollout objective.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum GradientMode {
    /// Evaluate coordinates one at a time on the calling thread.
    #[default]
    Serial,
    /// Fan coordinates out across `threads` scoped worker threads.
    ///
    /// `threads` is clamped to `[1, dim]`; `threads <= 1` degenerates to
    /// the serial path.
    Parallel {
        /// Worker-thread count for the coordinate fan-out.
        threads: usize,
    },
    /// Reverse-mode (adjoint) analytic gradient: one taped forward
    /// rollout plus one backward sweep, independent of the decision
    /// dimension — `O(1)` objective evaluations per gradient instead of
    /// the `O(n)` a finite-difference fan-out needs.
    ///
    /// Objectives without an adjoint implementation treat this as
    /// [`GradientMode::Serial`] (the trait default falls back to
    /// [`Objective::gradient`]).
    Adjoint,
    /// Second-order mode: the adjoint gradient plus a Gauss-Newton
    /// curvature matrix assembled from the same tape, consumed by the
    /// [`GaussNewton`](crate::GaussNewton) projected Levenberg–Marquardt
    /// solver instead of the first-order spectral method.
    ///
    /// As a plain *gradient* mode (for objectives or solvers that only
    /// ask for `∇f`) it is equivalent to [`GradientMode::Adjoint`]: the
    /// gradient half of the pair is the same backward sweep.
    GaussNewton,
}

/// Resolves a configured worker-thread count: `0` means "use every
/// available core" ([`std::thread::available_parallelism`], falling
/// back to 1 where the parallelism is unknown); any other value is
/// taken as-is. Shared by [`GradientMode::Parallel`] and the fan-out
/// helpers so a zero width consistently auto-sizes to the machine.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

impl GradientMode {
    /// Worker threads this mode fans a gradient out across (1 for the
    /// serial path) — the figure telemetry reports per
    /// [`GradientEval`](otem_telemetry::Event::GradientEval).
    /// A configured width of `0` resolves to the machine's available
    /// parallelism (see [`resolve_threads`]).
    pub fn worker_threads(&self) -> usize {
        match self {
            GradientMode::Serial | GradientMode::Adjoint | GradientMode::GaussNewton => 1,
            GradientMode::Parallel { threads } => resolve_threads(*threads),
        }
    }

    /// Stable snake_case mode name — the `mode` label on solve-outcome
    /// telemetry and the `otem_solve_outcome_total{mode,outcome}`
    /// metric family.
    pub const fn name(&self) -> &'static str {
        match self {
            GradientMode::Serial => "serial",
            GradientMode::Parallel { .. } => "parallel",
            GradientMode::Adjoint => "adjoint",
            GradientMode::GaussNewton => "gauss_newton",
        }
    }
}

/// A differentiable objective function `f: Rⁿ → R`.
///
/// Implementations may provide an analytic [`Objective::gradient`];
/// the default falls back to central finite differences via
/// [`NumericalGradient`].
pub trait Objective {
    /// Evaluates the objective at `x`.
    fn value(&self, x: &[f64]) -> f64;

    /// Writes `∇f(x)` into `grad`.
    ///
    /// The default implementation uses central finite differences
    /// (2·n extra evaluations).
    fn gradient(&self, x: &[f64], grad: &mut [f64]) {
        NumericalGradient::central(self, x, grad);
    }

    /// Writes `∇f(x)` into `grad` using the requested [`GradientMode`].
    ///
    /// The default dispatches [`GradientMode::Serial`] to
    /// [`Objective::gradient`] (which may be analytic) and
    /// [`GradientMode::Parallel`] to
    /// [`NumericalGradient::central_parallel`]. Types with analytic
    /// gradients should override this to keep the analytic path in both
    /// modes (see [`FnObjectiveWithGrad`]); types that own evaluation
    /// scratch state can override it to route each worker thread through
    /// its own workspace.
    fn gradient_with(&self, x: &[f64], grad: &mut [f64], mode: GradientMode)
    where
        Self: Sized + Sync,
    {
        match mode {
            GradientMode::Serial | GradientMode::Adjoint | GradientMode::GaussNewton => {
                self.gradient(x, grad);
            }
            GradientMode::Parallel { threads } => {
                NumericalGradient::central_parallel(self, x, grad, threads);
            }
        }
    }

    /// Evaluates the objective at several points in one call: `points`
    /// holds the lane-major flat matrix (`lanes × m`, lane `l` at
    /// `points[l·m .. (l+1)·m]`), and one value per lane is written to
    /// `out`.
    ///
    /// The default loops over [`Objective::value`]; implementations
    /// with a cheaper lockstep path (e.g. the MPC rollout objective's
    /// structure-of-arrays kernel) override this. Every lane must
    /// return **exactly** what a scalar [`Objective::value`] of that
    /// lane would — solvers rely on this to keep batched line searches
    /// bit-identical to scalar ones.
    ///
    /// # Panics
    ///
    /// Panics if `points.len() != out.len() * m`.
    fn value_batch(&self, points: &[f64], m: usize, out: &mut [f64]) {
        assert_eq!(
            points.len(),
            out.len() * m,
            "batched point matrix must be lanes × m"
        );
        for (z, o) in points.chunks_exact(m).zip(out.iter_mut()) {
            *o = self.value(z);
        }
    }
}

impl<T: Objective + ?Sized> Objective for &T {
    fn value(&self, x: &[f64]) -> f64 {
        (**self).value(x)
    }
    fn gradient(&self, x: &[f64], grad: &mut [f64]) {
        (**self).gradient(x, grad);
    }
    // Forwarded explicitly: solvers see objectives through `&T`, and the
    // default would silently hide an underlying batched override.
    fn value_batch(&self, points: &[f64], m: usize, out: &mut [f64]) {
        (**self).value_batch(points, m, out);
    }
}

/// Wraps a closure as an [`Objective`] (finite-difference gradient).
///
/// ```
/// use otem_solver::{FnObjective, Objective};
/// let f = FnObjective::new(|x: &[f64]| x[0] * x[0]);
/// assert_eq!(f.value(&[3.0]), 9.0);
/// ```
pub struct FnObjective<F> {
    f: F,
}

impl<F> std::fmt::Debug for FnObjective<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnObjective").finish_non_exhaustive()
    }
}

impl<F: Fn(&[f64]) -> f64> FnObjective<F> {
    /// Wraps the closure.
    pub fn new(f: F) -> Self {
        Self { f }
    }
}

impl<F: Fn(&[f64]) -> f64> Objective for FnObjective<F> {
    fn value(&self, x: &[f64]) -> f64 {
        (self.f)(x)
    }
}

/// Wraps a value closure plus an analytic-gradient closure as an
/// [`Objective`] — avoids the 2·n finite-difference evaluations when the
/// gradient is known in closed form.
///
/// ```
/// use otem_solver::{FnObjectiveWithGrad, Objective};
/// let f = FnObjectiveWithGrad::new(
///     |x: &[f64]| x[0] * x[0],
///     |x: &[f64], g: &mut [f64]| g[0] = 2.0 * x[0],
/// );
/// let mut g = [0.0];
/// f.gradient(&[3.0], &mut g);
/// assert_eq!(g[0], 6.0);
/// ```
pub struct FnObjectiveWithGrad<F, G> {
    f: F,
    g: G,
}

impl<F, G> std::fmt::Debug for FnObjectiveWithGrad<F, G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnObjectiveWithGrad")
            .finish_non_exhaustive()
    }
}

impl<F: Fn(&[f64]) -> f64, G: Fn(&[f64], &mut [f64])> FnObjectiveWithGrad<F, G> {
    /// Wraps the closures.
    pub fn new(f: F, g: G) -> Self {
        Self { f, g }
    }
}

impl<F: Fn(&[f64]) -> f64, G: Fn(&[f64], &mut [f64])> Objective for FnObjectiveWithGrad<F, G> {
    fn value(&self, x: &[f64]) -> f64 {
        (self.f)(x)
    }
    fn gradient(&self, x: &[f64], grad: &mut [f64]) {
        (self.g)(x, grad);
    }

    // The analytic gradient is cheaper than any finite-difference fan-out;
    // use it regardless of the requested mode.
    fn gradient_with(&self, x: &[f64], grad: &mut [f64], _mode: GradientMode)
    where
        Self: Sized + Sync,
    {
        (self.g)(x, grad);
    }
}

/// Central finite-difference gradient helper.
#[derive(Debug, Clone, Copy)]
pub struct NumericalGradient;

impl NumericalGradient {
    /// Relative step size for central differences (∛ε scaled).
    pub const REL_STEP: f64 = 6.055_454_452_393_343e-6; // cbrt(f64::EPSILON)

    /// Writes the central-difference gradient of `f` at `x` into `grad`.
    ///
    /// # Panics
    ///
    /// Panics if `grad.len() != x.len()`.
    pub fn central<F: Objective + ?Sized>(f: &F, x: &[f64], grad: &mut [f64]) {
        assert_eq!(grad.len(), x.len(), "gradient buffer length mismatch");
        let mut xp = x.to_vec();
        Self::central_range(&mut xp, grad, 0, |z| f.value(z));
    }

    /// Central-difference kernel over the coordinate window
    /// `[start, start + grad.len())`.
    ///
    /// `xp` is a scratch copy of the full evaluation point; it is
    /// perturbed one coordinate at a time and restored exactly, so after
    /// the call it again equals the input point bit-for-bit. Both the
    /// serial and the parallel gradient paths funnel through this one
    /// kernel, which is what makes them bit-identical: a coordinate's
    /// two evaluations and the `(fp - fm) / (2h)` quotient do not depend
    /// on which thread runs them.
    ///
    /// `eval` is `FnMut` so callers can route evaluations through
    /// per-thread mutable scratch state (e.g. a reusable plant model)
    /// without interior mutability.
    ///
    /// # Panics
    ///
    /// Panics if the window `[start, start + grad.len())` exceeds `xp`.
    pub fn central_range(
        xp: &mut [f64],
        grad: &mut [f64],
        start: usize,
        mut eval: impl FnMut(&[f64]) -> f64,
    ) {
        assert!(
            start + grad.len() <= xp.len(),
            "gradient window exceeds point dimension"
        );
        for (k, g) in grad.iter_mut().enumerate() {
            let i = start + k;
            let orig = xp[i];
            let h = Self::REL_STEP * orig.abs().max(1.0);
            xp[i] = orig + h;
            let fp = eval(xp);
            xp[i] = orig - h;
            let fm = eval(xp);
            xp[i] = orig;
            *g = (fp - fm) / (2.0 * h);
        }
    }

    /// Central-difference gradient with the coordinates fanned out
    /// across `threads` scoped threads.
    ///
    /// Coordinates are split into contiguous chunks, one chunk per
    /// worker; each worker clones the evaluation point once and runs
    /// [`NumericalGradient::central_range`] over its window. The result
    /// is **bit-identical** to [`NumericalGradient::central`] for any
    /// thread count. `threads` is clamped to `[1, x.len()]`, and
    /// `threads <= 1` short-circuits to the serial path (no spawn).
    ///
    /// # Panics
    ///
    /// Panics if `grad.len() != x.len()`.
    pub fn central_parallel<F: Objective + Sync + ?Sized>(
        f: &F,
        x: &[f64],
        grad: &mut [f64],
        threads: usize,
    ) {
        assert_eq!(grad.len(), x.len(), "gradient buffer length mismatch");
        let n = x.len();
        let threads = resolve_threads(threads).clamp(1, n.max(1));
        if threads <= 1 {
            Self::central(f, x, grad);
            return;
        }
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (idx, grad_chunk) in grad.chunks_mut(chunk).enumerate() {
                scope.spawn(move || {
                    let mut xp = x.to_vec();
                    Self::central_range(&mut xp, grad_chunk, idx * chunk, |z| f.value(z));
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_difference_matches_analytic_on_quadratic() {
        let f = FnObjective::new(|x: &[f64]| 2.0 * x[0] * x[0] + 3.0 * x[1] + x[0] * x[1]);
        let x = [1.5, -2.0];
        let mut grad = [0.0; 2];
        f.gradient(&x, &mut grad);
        // ∂f/∂x0 = 4·x0 + x1 = 4, ∂f/∂x1 = 3 + x0 = 4.5
        assert!((grad[0] - 4.0).abs() < 1e-6, "{grad:?}");
        assert!((grad[1] - 4.5).abs() < 1e-6, "{grad:?}");
    }

    #[test]
    fn gradient_of_nonsmooth_scale_is_stable() {
        // Large-magnitude coordinates must still get sensible steps.
        let f = FnObjective::new(|x: &[f64]| x[0].powi(2) / 1e8);
        let x = [1e6];
        let mut grad = [0.0];
        f.gradient(&x, &mut grad);
        assert!((grad[0] - 2.0 * 1e6 / 1e8).abs() < 1e-4);
    }

    #[test]
    fn analytic_gradient_bypasses_finite_differences() {
        use std::cell::Cell as StdCell;
        let value_calls = StdCell::new(0usize);
        let f = FnObjectiveWithGrad::new(
            |x: &[f64]| {
                value_calls.set(value_calls.get() + 1);
                x[0] * x[0]
            },
            |x: &[f64], g: &mut [f64]| g[0] = 2.0 * x[0],
        );
        let mut grad = [0.0];
        f.gradient(&[4.0], &mut grad);
        assert_eq!(grad[0], 8.0);
        assert_eq!(value_calls.get(), 0, "gradient must not evaluate f");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_buffer_panics() {
        let f = FnObjective::new(|x: &[f64]| x[0]);
        let mut grad = [0.0; 2];
        NumericalGradient::central(&f, &[1.0], &mut grad);
    }

    #[test]
    fn parallel_gradient_is_bit_identical_to_serial() {
        // A mildly nasty function: cross terms and transcendentals, so any
        // deviation in evaluation points or reduction order would show up.
        let f = FnObjective::new(|x: &[f64]| {
            x.iter()
                .enumerate()
                .map(|(i, &xi)| (xi * (i as f64 + 0.3)).sin() + xi * xi)
                .sum::<f64>()
                + x.windows(2).map(|w| w[0] * w[1]).sum::<f64>()
        });
        let x: Vec<f64> = (0..17).map(|i| (i as f64 - 8.0) * 0.37).collect();
        let mut serial = vec![0.0; x.len()];
        NumericalGradient::central(&f, &x, &mut serial);
        for threads in [1, 2, 3, 4, 16, 64] {
            let mut parallel = vec![0.0; x.len()];
            NumericalGradient::central_parallel(&f, &x, &mut parallel, threads);
            assert_eq!(
                serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                parallel.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn gradient_with_dispatches_modes() {
        let f = FnObjective::new(|x: &[f64]| x.iter().map(|v| v * v * v).sum());
        let x = [0.5, -1.25, 2.0];
        let (mut serial, mut parallel) = ([0.0; 3], [0.0; 3]);
        f.gradient_with(&x, &mut serial, GradientMode::Serial);
        f.gradient_with(&x, &mut parallel, GradientMode::Parallel { threads: 2 });
        assert_eq!(serial, parallel);
        // Without an adjoint implementation, Adjoint falls back to the
        // (possibly analytic) serial gradient.
        let mut adjoint = [0.0; 3];
        f.gradient_with(&x, &mut adjoint, GradientMode::Adjoint);
        assert_eq!(
            serial.map(f64::to_bits),
            adjoint.map(f64::to_bits),
            "adjoint fallback must reuse the serial path"
        );
    }

    #[test]
    fn analytic_gradient_survives_parallel_mode() {
        let f = FnObjectiveWithGrad::new(
            |x: &[f64]| x[0] * x[0],
            |x: &[f64], g: &mut [f64]| g[0] = 2.0 * x[0],
        );
        let mut grad = [0.0];
        f.gradient_with(&[3.0], &mut grad, GradientMode::Parallel { threads: 4 });
        // Exactly 6.0: the analytic path must not fall back to finite
        // differences just because a parallel mode was requested.
        assert_eq!(grad[0], 6.0);
    }

    #[test]
    fn central_range_restores_scratch_point() {
        let x = [1.0, -2.0, 3.5];
        let mut xp = x.to_vec();
        let mut grad = [0.0; 2];
        NumericalGradient::central_range(&mut xp, &mut grad, 1, |z| z.iter().sum());
        assert_eq!(xp, x);
        assert!((grad[0] - 1.0).abs() < 1e-9 && (grad[1] - 1.0).abs() < 1e-9);
    }
}
