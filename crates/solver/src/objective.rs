//! The objective-function abstraction and finite-difference gradients.

/// A differentiable objective function `f: Rⁿ → R`.
///
/// Implementations may provide an analytic [`Objective::gradient`];
/// the default falls back to central finite differences via
/// [`NumericalGradient`].
pub trait Objective {
    /// Evaluates the objective at `x`.
    fn value(&self, x: &[f64]) -> f64;

    /// Writes `∇f(x)` into `grad`.
    ///
    /// The default implementation uses central finite differences
    /// (2·n extra evaluations).
    fn gradient(&self, x: &[f64], grad: &mut [f64]) {
        NumericalGradient::central(self, x, grad);
    }
}

impl<T: Objective + ?Sized> Objective for &T {
    fn value(&self, x: &[f64]) -> f64 {
        (**self).value(x)
    }
    fn gradient(&self, x: &[f64], grad: &mut [f64]) {
        (**self).gradient(x, grad);
    }
}

/// Wraps a closure as an [`Objective`] (finite-difference gradient).
///
/// ```
/// use otem_solver::{FnObjective, Objective};
/// let f = FnObjective::new(|x: &[f64]| x[0] * x[0]);
/// assert_eq!(f.value(&[3.0]), 9.0);
/// ```
pub struct FnObjective<F> {
    f: F,
}

impl<F> std::fmt::Debug for FnObjective<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnObjective").finish_non_exhaustive()
    }
}

impl<F: Fn(&[f64]) -> f64> FnObjective<F> {
    /// Wraps the closure.
    pub fn new(f: F) -> Self {
        Self { f }
    }
}

impl<F: Fn(&[f64]) -> f64> Objective for FnObjective<F> {
    fn value(&self, x: &[f64]) -> f64 {
        (self.f)(x)
    }
}

/// Wraps a value closure plus an analytic-gradient closure as an
/// [`Objective`] — avoids the 2·n finite-difference evaluations when the
/// gradient is known in closed form.
///
/// ```
/// use otem_solver::{FnObjectiveWithGrad, Objective};
/// let f = FnObjectiveWithGrad::new(
///     |x: &[f64]| x[0] * x[0],
///     |x: &[f64], g: &mut [f64]| g[0] = 2.0 * x[0],
/// );
/// let mut g = [0.0];
/// f.gradient(&[3.0], &mut g);
/// assert_eq!(g[0], 6.0);
/// ```
pub struct FnObjectiveWithGrad<F, G> {
    f: F,
    g: G,
}

impl<F, G> std::fmt::Debug for FnObjectiveWithGrad<F, G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnObjectiveWithGrad").finish_non_exhaustive()
    }
}

impl<F: Fn(&[f64]) -> f64, G: Fn(&[f64], &mut [f64])> FnObjectiveWithGrad<F, G> {
    /// Wraps the closures.
    pub fn new(f: F, g: G) -> Self {
        Self { f, g }
    }
}

impl<F: Fn(&[f64]) -> f64, G: Fn(&[f64], &mut [f64])> Objective for FnObjectiveWithGrad<F, G> {
    fn value(&self, x: &[f64]) -> f64 {
        (self.f)(x)
    }
    fn gradient(&self, x: &[f64], grad: &mut [f64]) {
        (self.g)(x, grad);
    }
}

/// Central finite-difference gradient helper.
#[derive(Debug, Clone, Copy)]
pub struct NumericalGradient;

impl NumericalGradient {
    /// Relative step size for central differences (∛ε scaled).
    pub const REL_STEP: f64 = 6.055_454_452_393_343e-6; // cbrt(f64::EPSILON)

    /// Writes the central-difference gradient of `f` at `x` into `grad`.
    ///
    /// # Panics
    ///
    /// Panics if `grad.len() != x.len()`.
    pub fn central<F: Objective + ?Sized>(f: &F, x: &[f64], grad: &mut [f64]) {
        assert_eq!(grad.len(), x.len(), "gradient buffer length mismatch");
        let mut xp = x.to_vec();
        for i in 0..x.len() {
            let h = Self::REL_STEP * x[i].abs().max(1.0);
            let orig = xp[i];
            xp[i] = orig + h;
            let fp = f.value(&xp);
            xp[i] = orig - h;
            let fm = f.value(&xp);
            xp[i] = orig;
            grad[i] = (fp - fm) / (2.0 * h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_difference_matches_analytic_on_quadratic() {
        let f = FnObjective::new(|x: &[f64]| 2.0 * x[0] * x[0] + 3.0 * x[1] + x[0] * x[1]);
        let x = [1.5, -2.0];
        let mut grad = [0.0; 2];
        f.gradient(&x, &mut grad);
        // ∂f/∂x0 = 4·x0 + x1 = 4, ∂f/∂x1 = 3 + x0 = 4.5
        assert!((grad[0] - 4.0).abs() < 1e-6, "{grad:?}");
        assert!((grad[1] - 4.5).abs() < 1e-6, "{grad:?}");
    }

    #[test]
    fn gradient_of_nonsmooth_scale_is_stable() {
        // Large-magnitude coordinates must still get sensible steps.
        let f = FnObjective::new(|x: &[f64]| x[0].powi(2) / 1e8);
        let x = [1e6];
        let mut grad = [0.0];
        f.gradient(&x, &mut grad);
        assert!((grad[0] - 2.0 * 1e6 / 1e8).abs() < 1e-4);
    }

    #[test]
    fn analytic_gradient_bypasses_finite_differences() {
        use std::cell::Cell as StdCell;
        let value_calls = StdCell::new(0usize);
        let f = FnObjectiveWithGrad::new(
            |x: &[f64]| {
                value_calls.set(value_calls.get() + 1);
                x[0] * x[0]
            },
            |x: &[f64], g: &mut [f64]| g[0] = 2.0 * x[0],
        );
        let mut grad = [0.0];
        f.gradient(&[4.0], &mut grad);
        assert_eq!(grad[0], 8.0);
        assert_eq!(value_calls.get(), 0, "gradient must not evaluate f");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_buffer_panics() {
        let f = FnObjective::new(|x: &[f64]| x[0]);
        let mut grad = [0.0; 2];
        NumericalGradient::central(&f, &[1.0], &mut grad);
    }
}
