//! The numeric abstraction the batched rollout kernels are generic over.
//!
//! The model crates' step math (converter power maps, the battery current
//! solve, the ultracapacitor terminal solve, the Crank–Nicolson thermal
//! step) is written once against this trait and monomorphised per scalar
//! type. `f64` is the production scalar: its kernel instantiations execute
//! the *same operations in the same order* as the pre-refactor concrete
//! code, so the f64 path stays bit-identical to the committed golden
//! traces. `f32` (behind the `f32` feature) exists as a stress test of the
//! abstraction — it proves no kernel silently assumes the scalar *is*
//! `f64` — and as the staging ground for wide SIMD lanes later.

use core::fmt::Debug;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A floating-point scalar the model kernels can be generic over.
///
/// Implementations must be plain IEEE-754 value types: `Copy`, totally
/// ordered where comparable, and with every method mapping to the
/// corresponding `f64`/`f32` intrinsic — kernels rely on the `f64`
/// instantiation being operation-for-operation identical to hand-written
/// `f64` code.
pub trait Scalar:
    Copy
    + Debug
    + PartialEq
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Converts from `f64` (model parameters are stored as `f64`;
    /// narrower scalars round here, once, at the kernel boundary).
    fn from_f64(value: f64) -> Self;
    /// Converts to `f64` (for reporting and cross-checking; lossless for
    /// the production scalar).
    fn to_f64(self) -> f64;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Natural exponential.
    fn exp(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// IEEE-754 maximum (NaN-ignoring, like [`f64::max`]).
    fn max(self, other: Self) -> Self;
    /// IEEE-754 minimum (NaN-ignoring, like [`f64::min`]).
    fn min(self, other: Self) -> Self;
    /// Clamps into `[lo, hi]` with [`f64::clamp`] semantics.
    fn clamp(self, lo: Self, hi: Self) -> Self;
    /// Magnitude of `self` with the sign of `sign` ([`f64::copysign`]).
    fn copysign(self, sign: Self) -> Self;
    /// `true` when neither NaN nor infinite.
    fn is_finite(self) -> bool;
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline(always)]
    fn from_f64(value: f64) -> Self {
        value
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline(always)]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }

    #[inline(always)]
    fn exp(self) -> Self {
        f64::exp(self)
    }

    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }

    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }

    #[inline(always)]
    fn min(self, other: Self) -> Self {
        f64::min(self, other)
    }

    #[inline(always)]
    fn clamp(self, lo: Self, hi: Self) -> Self {
        f64::clamp(self, lo, hi)
    }

    #[inline(always)]
    fn copysign(self, sign: Self) -> Self {
        f64::copysign(self, sign)
    }

    #[inline(always)]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
}

#[cfg(feature = "f32")]
impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline(always)]
    fn from_f64(value: f64) -> Self {
        value as f32
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }

    #[inline(always)]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }

    #[inline(always)]
    fn exp(self) -> Self {
        f32::exp(self)
    }

    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }

    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }

    #[inline(always)]
    fn min(self, other: Self) -> Self {
        f32::min(self, other)
    }

    #[inline(always)]
    fn clamp(self, lo: Self, hi: Self) -> Self {
        f32::clamp(self, lo, hi)
    }

    #[inline(always)]
    fn copysign(self, sign: Self) -> Self {
        f32::copysign(self, sign)
    }

    #[inline(always)]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel_quadratic<S: Scalar>(a: S, b: S, c: S) -> S {
        // The stable root of a·x² + b·x + c the model kernels use.
        let disc = b * b - S::from_f64(4.0) * a * c;
        (-b - disc.sqrt()) / (S::from_f64(2.0) * a)
    }

    #[test]
    fn f64_kernel_matches_hand_written_code_bitwise() {
        let (a, b, c) = (0.02_f64, -1.3, 5.0);
        let hand = (-b - (b * b - 4.0 * a * c).sqrt()) / (2.0 * a);
        assert_eq!(kernel_quadratic(a, b, c).to_bits(), hand.to_bits());
    }

    #[test]
    fn f64_ops_are_the_intrinsics() {
        assert_eq!(Scalar::max(1.0_f64, f64::NAN).to_bits(), 1.0_f64.to_bits());
        assert_eq!(Scalar::min(f64::NAN, 2.0_f64).to_bits(), 2.0_f64.to_bits());
        assert_eq!(Scalar::copysign(3.0_f64, -0.0), -3.0);
        assert_eq!(Scalar::clamp(1.7_f64, 0.0, 1.0), 1.0);
        assert!(Scalar::is_finite(0.0_f64));
        assert!(!Scalar::is_finite(f64::INFINITY));
        assert_eq!(<f64 as Scalar>::ZERO, 0.0);
        assert_eq!(<f64 as Scalar>::ONE, 1.0);
        assert_eq!(<f64 as Scalar>::from_f64(2.5).to_f64(), 2.5);
    }

    #[cfg(feature = "f32")]
    #[test]
    fn f32_kernel_tracks_f64_to_single_precision() {
        let wide = kernel_quadratic(0.02_f64, -1.3, 5.0);
        let narrow = kernel_quadratic(0.02_f32, -1.3, 5.0);
        assert!((wide - narrow.to_f64()).abs() < 1e-4 * wide.abs());
        assert_eq!(<f32 as Scalar>::from_f64(0.5), 0.5_f32);
    }
}
