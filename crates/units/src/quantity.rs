//! The `quantity!` macro: generates an `f64` newtype with the arithmetic
//! and trait impls every physical quantity in this crate shares.

/// Defines an `f64`-backed physical-quantity newtype.
///
/// Generated API per type:
/// * `new(f64) -> Self`, `value(self) -> f64`
/// * same-dimension arithmetic: `Add`, `Sub`, `Neg`, `AddAssign`,
///   `SubAssign`, `Sum`
/// * scalar scaling: `Mul<f64>`, `f64 * Self`, `Div<f64>`,
///   and `Div<Self> -> f64` (dimensionless ratio)
/// * helpers: `abs`, `max`, `min`, `clamp`, `is_finite`, `signum`
/// * traits: `Clone`, `Copy`, `PartialEq`, `PartialOrd`, `Debug`,
///   `Default`, `Display` (with unit suffix), serde
macro_rules! quantity {
    (
        $(#[$meta:meta])*
        $name:ident, $unit:literal
    ) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, PartialOrd, Default, serde::Serialize, serde::Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// Zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Wraps a raw `f64` value expressed in the type's base unit.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw `f64` value in the type's base unit.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Element-wise maximum.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Element-wise minimum.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Clamps into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi` or either bound is NaN (delegates to
            /// [`f64::clamp`]).
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// `true` when the underlying value is finite.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Sign of the quantity (`-1.0`, `0.0`/`-0.0` treated per
            /// [`f64::signum`], `1.0`).
            #[inline]
            pub fn signum(self) -> f64 {
                self.0.signum()
            }
        }

        impl core::fmt::Debug for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, concat!("{:?} ", $unit), self.0)
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, concat!("{:.*} ", $unit), prec, self.0)
                } else {
                    write!(f, concat!("{} ", $unit), self.0)
                }
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl core::ops::AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl core::ops::Div<$name> for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl<'a> core::iter::Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }
    };
}

/// Defines `Lhs * Rhs = Out` (and, unless the operands are the same type,
/// the commuted `Rhs * Lhs = Out`) plus the inverse divisions
/// `Out / Rhs = Lhs` and `Out / Lhs = Rhs`.
macro_rules! dimension_mul {
    ($lhs:ident * $rhs:ident = $out:ident) => {
        impl core::ops::Mul<$rhs> for $lhs {
            type Output = $out;
            #[inline]
            fn mul(self, rhs: $rhs) -> $out {
                $out::new(self.value() * rhs.value())
            }
        }

        impl core::ops::Div<$rhs> for $out {
            type Output = $lhs;
            #[inline]
            fn div(self, rhs: $rhs) -> $lhs {
                $lhs::new(self.value() / rhs.value())
            }
        }

        impl core::ops::Div<$lhs> for $out {
            type Output = $rhs;
            #[inline]
            fn div(self, rhs: $lhs) -> $rhs {
                $rhs::new(self.value() / rhs.value())
            }
        }
    };
    (commute $lhs:ident * $rhs:ident = $out:ident) => {
        dimension_mul!($lhs * $rhs = $out);

        impl core::ops::Mul<$lhs> for $rhs {
            type Output = $out;
            #[inline]
            fn mul(self, rhs: $lhs) -> $out {
                $out::new(self.value() * rhs.value())
            }
        }
    };
}
