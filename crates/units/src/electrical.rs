//! Electrical quantities: voltage, current, resistance, capacitance and
//! charge.

use crate::energy::Watts;
use crate::mechanics::Seconds;

quantity! {
    /// Electric potential in volts.
    ///
    /// ```
    /// use otem_units::{Volts, Ohms, Amps};
    /// let drop: Volts = Amps::new(10.0) * Ohms::new(0.05);
    /// assert_eq!(drop, Volts::new(0.5));
    /// ```
    Volts, "V"
}

quantity! {
    /// Electric current in amperes. Positive means discharge (current drawn
    /// *from* a storage element) throughout the OTEM workspace.
    Amps, "A"
}

quantity! {
    /// Electrical resistance in ohms.
    Ohms, "Ω"
}

quantity! {
    /// Capacitance in farads. Used for the ultracapacitor bank rating
    /// (paper Table I sweeps 5,000–25,000 F).
    Farads, "F"
}

quantity! {
    /// Electric charge in coulombs (ampere-seconds).
    Coulombs, "C"
}

quantity! {
    /// Electric charge in ampere-hours; the customary unit for battery
    /// capacity ratings (paper Eq. 1's `C_bat`).
    AmpHours, "Ah"
}

dimension_mul!(commute Volts * Amps = Watts);
dimension_mul!(commute Amps * Ohms = Volts);
dimension_mul!(commute Amps * Seconds = Coulombs);

impl AmpHours {
    /// Converts to coulombs (1 Ah = 3600 C).
    #[inline]
    pub fn to_coulombs(self) -> Coulombs {
        Coulombs::new(self.value() * 3600.0)
    }

    /// Builds from coulombs.
    #[inline]
    pub fn from_coulombs(c: Coulombs) -> Self {
        Self::new(c.value() / 3600.0)
    }
}

impl Coulombs {
    /// Converts to ampere-hours.
    #[inline]
    pub fn to_amp_hours(self) -> AmpHours {
        AmpHours::from_coulombs(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ohms_law_round_trip() {
        let v = Volts::new(12.0);
        let r = Ohms::new(4.0);
        let i: Amps = v / r;
        assert_eq!(i, Amps::new(3.0));
        assert_eq!(i * r, v);
        assert_eq!(r * i, v);
    }

    #[test]
    fn power_from_voltage_and_current() {
        let p: Watts = Volts::new(400.0) * Amps::new(50.0);
        assert_eq!(p, Watts::new(20_000.0));
        assert_eq!(p / Volts::new(400.0), Amps::new(50.0));
        assert_eq!(p / Amps::new(50.0), Volts::new(400.0));
    }

    #[test]
    fn charge_conversions() {
        let q = AmpHours::new(3.1);
        assert_eq!(q.to_coulombs(), Coulombs::new(11_160.0));
        assert_eq!(q.to_coulombs().to_amp_hours(), q);
        let c: Coulombs = Amps::new(2.0) * Seconds::new(1800.0);
        assert_eq!(c.to_amp_hours(), AmpHours::new(1.0));
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(format!("{:.2}", Volts::new(3.65)), "3.65 V");
        assert_eq!(format!("{}", Amps::new(2.0)), "2 A");
    }
}
