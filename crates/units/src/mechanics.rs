//! Mechanical quantities used by the drive-cycle / power-train substrate.

use crate::energy::{Joules, Watts};

quantity! {
    /// Time in seconds; the simulation sampling period Δt (paper Eq. 17).
    Seconds, "s"
}

quantity! {
    /// Mass in kilograms.
    Kilograms, "kg"
}

quantity! {
    /// Distance in meters.
    Meters, "m"
}

quantity! {
    /// Speed in meters per second.
    MetersPerSecond, "m/s"
}

quantity! {
    /// Acceleration in meters per second squared.
    MetersPerSecondSquared, "m/s²"
}

quantity! {
    /// Force in newtons.
    Newtons, "N"
}

dimension_mul!(commute MetersPerSecond * Seconds = Meters);
dimension_mul!(commute MetersPerSecondSquared * Seconds = MetersPerSecond);
dimension_mul!(commute Kilograms * MetersPerSecondSquared = Newtons);
dimension_mul!(commute Newtons * MetersPerSecond = Watts);
dimension_mul!(commute Newtons * Meters = Joules);

impl MetersPerSecond {
    /// Builds from km/h (drive-cycle speed traces are customarily km/h or
    /// mph in the standards; we normalise to m/s internally).
    #[inline]
    pub fn from_kmh(kmh: f64) -> Self {
        Self::new(kmh / 3.6)
    }

    /// Converts to km/h.
    #[inline]
    pub fn to_kmh(self) -> f64 {
        self.value() * 3.6
    }

    /// Builds from miles per hour (EPA cycles are specified in mph).
    #[inline]
    pub fn from_mph(mph: f64) -> Self {
        Self::new(mph * 0.447_04)
    }

    /// Converts to miles per hour.
    #[inline]
    pub fn to_mph(self) -> f64 {
        self.value() / 0.447_04
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinematics() {
        let d: Meters = MetersPerSecond::new(20.0) * Seconds::new(30.0);
        assert_eq!(d, Meters::new(600.0));
        let dv: MetersPerSecond = MetersPerSecondSquared::new(2.0) * Seconds::new(3.0);
        assert_eq!(dv, MetersPerSecond::new(6.0));
    }

    #[test]
    fn force_and_power() {
        let f: Newtons = Kilograms::new(2000.0) * MetersPerSecondSquared::new(1.5);
        assert_eq!(f, Newtons::new(3000.0));
        let p: Watts = f * MetersPerSecond::new(10.0);
        assert_eq!(p, Watts::new(30_000.0));
        let w: Joules = f * Meters::new(5.0);
        assert_eq!(w, Joules::new(15_000.0));
    }

    #[test]
    fn speed_conversions() {
        assert!((MetersPerSecond::from_kmh(36.0).value() - 10.0).abs() < 1e-12);
        assert!((MetersPerSecond::new(10.0).to_kmh() - 36.0).abs() < 1e-12);
        let sixty = MetersPerSecond::from_mph(60.0);
        assert!((sixty.to_mph() - 60.0).abs() < 1e-12);
        assert!((sixty.value() - 26.8224).abs() < 1e-9);
    }
}
