//! Dimensionless bounded ratios: state-of-charge, state-of-energy,
//! efficiencies.

use core::fmt;

/// A dimensionless fraction in `[0, 1]`.
///
/// Used for battery state-of-charge (paper `SoC`), ultracapacitor
/// state-of-energy (`SoE`), converter efficiency (`η_DC`), cooler
/// efficiency (`η_c`) and regenerative-braking recapture fractions. The
/// paper reports SoC/SoE in percent; [`Ratio::from_percent`] /
/// [`Ratio::to_percent`] convert at the boundary.
///
/// Construction clamps to `[0, 1]`, so integration drift can never produce
/// a 101 % state of charge.
///
/// # Examples
///
/// ```
/// use otem_units::Ratio;
/// let soc = Ratio::from_percent(85.0);
/// assert_eq!(soc.value(), 0.85);
/// assert_eq!(soc.to_percent(), 85.0);
/// assert_eq!(Ratio::new(1.7), Ratio::ONE); // clamped
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd, Default, serde::Serialize, serde::Deserialize)]
#[serde(transparent)]
pub struct Ratio(f64);

impl Ratio {
    /// The empty fraction, 0 %.
    pub const ZERO: Self = Self(0.0);
    /// The full fraction, 100 %.
    pub const ONE: Self = Self(1.0);
    /// One half, 50 %.
    pub const HALF: Self = Self(0.5);

    /// Builds a ratio, clamping the input into `[0, 1]`. NaN becomes 0.
    #[inline]
    pub fn new(value: f64) -> Self {
        if value.is_nan() {
            Self(0.0)
        } else {
            Self(value.clamp(0.0, 1.0))
        }
    }

    /// Builds from a percentage (`85.0` → `0.85`), clamping to `[0, 1]`.
    #[inline]
    pub fn from_percent(percent: f64) -> Self {
        Self::new(percent / 100.0)
    }

    /// Raw fraction in `[0, 1]`.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// As a percentage in `[0, 100]`.
    #[inline]
    pub fn to_percent(self) -> f64 {
        self.0 * 100.0
    }

    /// Saturating addition of a (possibly negative) raw delta.
    #[inline]
    pub fn saturating_add(self, delta: f64) -> Self {
        Self::new(self.0 + delta)
    }

    /// Linear interpolation between `self` and `other` at parameter `t`
    /// (itself clamped to `[0, 1]`).
    #[inline]
    pub fn lerp(self, other: Self, t: f64) -> Self {
        let t = t.clamp(0.0, 1.0);
        Self::new(self.0 + (other.0 - self.0) * t)
    }
}

impl fmt::Debug for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} (ratio)", self.0)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*}%", prec, self.to_percent())
        } else {
            write!(f, "{}%", self.to_percent())
        }
    }
}

impl core::ops::Mul<f64> for Ratio {
    type Output = f64;
    /// Scales a raw value by the fraction (e.g. usable capacity =
    /// `soc * capacity`). Returns `f64` because the result carries the
    /// operand's dimension, not a ratio.
    #[inline]
    fn mul(self, rhs: f64) -> f64 {
        self.0 * rhs
    }
}

impl core::ops::Mul<Ratio> for f64 {
    type Output = f64;
    #[inline]
    fn mul(self, rhs: Ratio) -> f64 {
        self * rhs.0
    }
}

impl core::ops::Mul<Ratio> for Ratio {
    type Output = Ratio;
    /// Composes two fractions (e.g. chained efficiencies).
    #[inline]
    fn mul(self, rhs: Ratio) -> Ratio {
        Ratio::new(self.0 * rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_clamps() {
        assert_eq!(Ratio::new(-0.5), Ratio::ZERO);
        assert_eq!(Ratio::new(2.0), Ratio::ONE);
        assert_eq!(Ratio::new(f64::NAN), Ratio::ZERO);
        assert_eq!(Ratio::from_percent(150.0), Ratio::ONE);
    }

    #[test]
    fn percent_round_trip() {
        let r = Ratio::from_percent(42.5);
        assert!((r.to_percent() - 42.5).abs() < 1e-12);
    }

    #[test]
    fn saturating_add_stays_bounded() {
        assert_eq!(Ratio::new(0.95).saturating_add(0.2), Ratio::ONE);
        assert_eq!(Ratio::new(0.05).saturating_add(-0.2), Ratio::ZERO);
        let mid = Ratio::new(0.5).saturating_add(0.25);
        assert!((mid.value() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn efficiency_composition() {
        let dc = Ratio::new(0.95);
        let motor = Ratio::new(0.9);
        assert!(((dc * motor).value() - 0.855).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Ratio::new(0.2);
        let b = Ratio::new(0.8);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert!((a.lerp(b, 0.5).value() - 0.5).abs() < 1e-12);
        // t outside [0,1] clamps
        assert_eq!(a.lerp(b, 5.0), b);
    }

    #[test]
    fn display_as_percent() {
        assert_eq!(format!("{:.1}", Ratio::new(0.851)), "85.1%");
    }
}
