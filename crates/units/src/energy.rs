//! Power and energy quantities.

use crate::mechanics::Seconds;

quantity! {
    /// Power in watts. Positive values are consumption/discharge demand;
    /// negative values are regeneration/charging throughout the workspace.
    Watts, "W"
}

quantity! {
    /// Power in kilowatts; convenience wrapper for reporting. Internal
    /// models always compute in [`Watts`].
    Kilowatts, "kW"
}

quantity! {
    /// Energy in joules (watt-seconds).
    Joules, "J"
}

dimension_mul!(commute Watts * Seconds = Joules);

impl Watts {
    /// Converts to kilowatts.
    #[inline]
    pub fn to_kilowatts(self) -> Kilowatts {
        Kilowatts::new(self.value() / 1000.0)
    }
}

impl Kilowatts {
    /// Converts to watts.
    #[inline]
    pub fn to_watts(self) -> Watts {
        Watts::new(self.value() * 1000.0)
    }
}

impl From<Kilowatts> for Watts {
    #[inline]
    fn from(kw: Kilowatts) -> Self {
        kw.to_watts()
    }
}

impl Joules {
    /// Converts to watt-hours (1 Wh = 3600 J).
    #[inline]
    pub fn to_watt_hours(self) -> f64 {
        self.value() / 3600.0
    }

    /// Builds from watt-hours.
    #[inline]
    pub fn from_watt_hours(wh: f64) -> Self {
        Self::new(wh * 3600.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_is_power_times_time() {
        let e: Joules = Watts::new(500.0) * Seconds::new(4.0);
        assert_eq!(e, Joules::new(2000.0));
        assert_eq!(e / Seconds::new(4.0), Watts::new(500.0));
        assert_eq!(e / Watts::new(500.0), Seconds::new(4.0));
    }

    #[test]
    fn kilowatt_round_trip() {
        let p = Watts::new(75_000.0);
        assert_eq!(p.to_kilowatts(), Kilowatts::new(75.0));
        assert_eq!(Watts::from(p.to_kilowatts()), p);
    }

    #[test]
    fn watt_hours() {
        assert_eq!(Joules::new(7200.0).to_watt_hours(), 2.0);
        assert_eq!(Joules::from_watt_hours(1.0), Joules::new(3600.0));
    }
}
