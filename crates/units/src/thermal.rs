//! Thermal quantities: temperature, heat capacity and thermal conductance.

use crate::energy::{Joules, Watts};
use crate::mechanics::Seconds;

quantity! {
    /// Absolute temperature in kelvin.
    ///
    /// All thermal models operate on kelvin; the Arrhenius terms in the
    /// battery capacity-loss law (paper Eq. 5) require absolute
    /// temperature. Use [`Kelvin::from_celsius`] / [`Kelvin::to_celsius`]
    /// at the boundaries.
    ///
    /// ```
    /// use otem_units::Kelvin;
    /// let t = Kelvin::from_celsius(25.0);
    /// assert_eq!(t, Kelvin::new(298.15));
    /// assert_eq!(t.to_celsius().value(), 25.0);
    /// ```
    Kelvin, "K"
}

quantity! {
    /// Temperature expressed in degrees Celsius — reporting convenience
    /// only; models compute in [`Kelvin`].
    Celsius, "°C"
}

quantity! {
    /// Rate of temperature change in kelvin per second (paper Eq. 14–15,
    /// `dT/dt`).
    KelvinPerSecond, "K/s"
}

quantity! {
    /// Lumped heat capacity in joules per kelvin (paper `C_b`, `C_c`).
    HeatCapacity, "J/K"
}

quantity! {
    /// Thermal conductance in watts per kelvin (paper's heat-transfer
    /// coefficients `h_cb`, `h_bc` after lumping with contact area).
    ThermalConductance, "W/K"
}

dimension_mul!(commute KelvinPerSecond * Seconds = Kelvin);
dimension_mul!(commute HeatCapacity * Kelvin = Joules);
dimension_mul!(commute ThermalConductance * Kelvin = Watts);

impl Kelvin {
    /// Absolute zero.
    pub const ABSOLUTE_ZERO_CELSIUS: f64 = -273.15;

    /// Builds from degrees Celsius.
    #[inline]
    pub fn from_celsius(celsius: f64) -> Self {
        Self::new(celsius - Self::ABSOLUTE_ZERO_CELSIUS)
    }

    /// Converts to degrees Celsius.
    #[inline]
    pub fn to_celsius(self) -> Celsius {
        Celsius::new(self.value() + Self::ABSOLUTE_ZERO_CELSIUS)
    }
}

impl From<Celsius> for Kelvin {
    #[inline]
    fn from(c: Celsius) -> Self {
        Kelvin::from_celsius(c.value())
    }
}

impl From<Kelvin> for Celsius {
    #[inline]
    fn from(k: Kelvin) -> Self {
        k.to_celsius()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn celsius_round_trip() {
        let t = Kelvin::from_celsius(40.0);
        assert!((t.value() - 313.15).abs() < 1e-12);
        assert!((Kelvin::from(t.to_celsius()).value() - t.value()).abs() < 1e-12);
    }

    #[test]
    fn heat_flow_from_conductance() {
        let h = ThermalConductance::new(5.0);
        let dt = Kelvin::new(12.0);
        let q: Watts = h * dt;
        assert_eq!(q, Watts::new(60.0));
    }

    #[test]
    fn stored_heat_from_capacity() {
        let c = HeatCapacity::new(800.0);
        let e: Joules = c * Kelvin::new(3.0);
        assert_eq!(e, Joules::new(2400.0));
        // dT = E / C
        assert_eq!(e / c, Kelvin::new(3.0));
    }

    #[test]
    fn rate_integrates_to_temperature() {
        let rate = KelvinPerSecond::new(0.05);
        let dt: Kelvin = rate * Seconds::new(60.0);
        assert!((dt.value() - 3.0).abs() < 1e-12);
    }
}
