//! Physical-quantity newtypes for the OTEM electric-vehicle simulator.
//!
//! Every model crate in the OTEM workspace (battery, ultracapacitor,
//! thermal plant, drive cycle, controller) exchanges physical quantities.
//! Representing them as raw `f64` invites unit bugs — a watt passed where a
//! joule was expected, a Celsius value fed into an Arrhenius exponent that
//! needs kelvin. This crate provides thin `f64` newtypes with:
//!
//! * arithmetic restricted to dimensionally meaningful operations
//!   (`Watts * Seconds = Joules`, `Volts * Amps = Watts`, …),
//! * explicit conversion constructors (`Kelvin::from_celsius`),
//! * the common trait set (`Copy`, `PartialOrd`, `Debug`, `Display`,
//!   `Default`, serde) so the types slot into collections and configs.
//!
//! # Examples
//!
//! ```
//! use otem_units::{Volts, Amps, Watts, Seconds, Joules};
//!
//! let v = Volts::new(350.0);
//! let i = Amps::new(120.0);
//! let p: Watts = v * i;
//! let e: Joules = p * Seconds::new(10.0);
//! assert_eq!(e, Joules::new(420_000.0));
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

#[macro_use]
mod quantity;

mod electrical;
mod energy;
mod mechanics;
mod ratio;
mod scalar;
mod thermal;

pub use electrical::{AmpHours, Amps, Coulombs, Farads, Ohms, Volts};
pub use energy::{Joules, Kilowatts, Watts};
pub use mechanics::{Kilograms, Meters, MetersPerSecond, MetersPerSecondSquared, Newtons, Seconds};
pub use ratio::Ratio;
pub use scalar::Scalar;
pub use thermal::{Celsius, HeatCapacity, Kelvin, KelvinPerSecond, ThermalConductance};

/// Ideal gas constant in J/(mol·K); used by the Arrhenius capacity-loss
/// model (paper Eq. 5).
pub const GAS_CONSTANT: f64 = 8.314_462_618;
