//! Property-based tests for the quantity newtypes: the generated
//! arithmetic must agree with raw `f64` arithmetic, and `Ratio` must stay
//! inside its invariant interval under every operation.

use otem_units::{Amps, Joules, Kelvin, Ohms, Ratio, Seconds, Volts, Watts};
use proptest::prelude::*;

fn finite() -> impl Strategy<Value = f64> {
    -1e9..1e9f64
}

proptest! {
    #[test]
    fn add_matches_f64(a in finite(), b in finite()) {
        prop_assert_eq!((Watts::new(a) + Watts::new(b)).value(), a + b);
        prop_assert_eq!((Kelvin::new(a) - Kelvin::new(b)).value(), a - b);
    }

    #[test]
    fn scalar_scaling_matches_f64(a in finite(), k in -1e6..1e6f64) {
        prop_assert_eq!((Joules::new(a) * k).value(), a * k);
        prop_assert_eq!((k * Joules::new(a)).value(), k * a);
    }

    #[test]
    fn dimensional_product_and_inverse(p in 1e-3..1e6f64, t in 1e-3..1e6f64) {
        let e = Watts::new(p) * Seconds::new(t);
        prop_assert_eq!(e.value(), p * t);
        // Division recovers each factor to floating-point accuracy.
        let p2 = e / Seconds::new(t);
        let t2 = e / Watts::new(p);
        prop_assert!((p2.value() - p).abs() <= 1e-9 * p.abs());
        prop_assert!((t2.value() - t).abs() <= 1e-9 * t.abs());
    }

    #[test]
    fn ohms_law_consistency(v in 1e-3..1e4f64, r in 1e-3..1e3f64) {
        let i: Amps = Volts::new(v) / Ohms::new(r);
        let v_back: Volts = i * Ohms::new(r);
        prop_assert!((v_back.value() - v).abs() <= 1e-9 * v);
    }

    #[test]
    fn ratio_always_in_unit_interval(x in -10.0..10.0f64, d in -10.0..10.0f64) {
        let r = Ratio::new(x);
        prop_assert!((0.0..=1.0).contains(&r.value()));
        let r2 = r.saturating_add(d);
        prop_assert!((0.0..=1.0).contains(&r2.value()));
        let r3 = r * r2;
        prop_assert!((0.0..=1.0).contains(&r3.value()));
    }

    #[test]
    fn ratio_percent_round_trip(p in 0.0..100.0f64) {
        let r = Ratio::from_percent(p);
        prop_assert!((r.to_percent() - p).abs() < 1e-9);
    }

    #[test]
    fn kelvin_celsius_round_trip(c in -200.0..1000.0f64) {
        let k = Kelvin::from_celsius(c);
        prop_assert!((k.to_celsius().value() - c).abs() < 1e-9);
    }

    #[test]
    fn sum_matches_iterative_add(values in prop::collection::vec(finite(), 0..50)) {
        let total: Watts = values.iter().map(|&v| Watts::new(v)).sum();
        let expected: f64 = values.iter().sum();
        prop_assert_eq!(total.value(), expected);
    }
}
