//! Acceptance test for the Chrome-trace exporter: a 120-step US06 OTEM
//! run traced through `ChromeTraceSink` must produce a structurally
//! valid Chrome Trace Event Format document — a JSON array of objects
//! whose `ph:"B"` / `ph:"E"` pairs are balanced and properly nested
//! per `tid` (lane), with per-lane monotone non-decreasing timestamps —
//! directly loadable in `chrome://tracing` / Perfetto.
//!
//! The vendored serde is a derive stub, so validation uses the same
//! hand-rolled field extraction the exporter's consumers would: every
//! record the sink writes is one `{...}` object on its own line.

use otem_repro::control::mpc::MpcConfig;
use otem_repro::control::policy::Otem;
use otem_repro::control::{Simulator, SystemConfig};
use otem_repro::drivecycle::{standard, PowerTrace, Powertrain, StandardCycle, VehicleParams};
use otem_repro::telemetry::ChromeTraceSink;
use otem_repro::units::Seconds;
use std::collections::BTreeMap;

const STEPS: usize = 120;

fn us06_trace() -> PowerTrace {
    let cycle = standard(StandardCycle::Us06).expect("synthesis");
    let trace = Powertrain::new(VehicleParams::compact_ev())
        .expect("vehicle")
        .power_trace(&cycle);
    PowerTrace::new(Seconds::new(1.0), trace.window(0, STEPS))
}

/// Extracts `"key":"value"` from one record line.
fn str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":\"");
    let at = line.find(&needle)? + needle.len();
    let end = line[at..].find('"')?;
    Some(&line[at..at + end])
}

/// Extracts a numeric field (`"key":123` or `"key":123.456`).
fn num_field(line: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[test]
fn chrome_trace_of_a_us06_otem_run_is_balanced_and_monotone_per_lane() {
    let config = SystemConfig::stress_rig();
    let mut otem = Otem::with_mpc(
        &config,
        MpcConfig {
            horizon: 6,
            solver_iterations: 8,
            ..MpcConfig::default()
        },
    )
    .expect("valid");

    let sink = ChromeTraceSink::new(Vec::<u8>::new());
    let result = Simulator::new(&config).run_with(&mut otem, &us06_trace(), &sink);
    assert_eq!(result.records.len(), STEPS);
    let doc = String::from_utf8(sink.finish()).expect("UTF-8 trace");

    // Document shape: a JSON array, one record object per line.
    assert!(doc.starts_with("[\n"), "must open a JSON array");
    assert!(doc.trim_end().ends_with(']'), "must close the array");
    let body = doc
        .trim_start_matches("[\n")
        .trim_end()
        .trim_end_matches(']')
        .trim_end();

    // Per-lane stack replay over the B/E record stream.
    let mut stacks: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let mut last_ts: BTreeMap<u64, f64> = BTreeMap::new();
    let mut b_records = 0usize;
    let mut names_seen: Vec<String> = Vec::new();
    for line in body.lines() {
        let line = line.trim_end_matches(',');
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "record is not one object per line: {line:?}"
        );
        let ph = str_field(line, "ph").expect("ph field");
        let tid = num_field(line, "tid").unwrap_or_else(|| panic!("tid in {line:?}")) as u64;
        let ts = num_field(line, "ts").unwrap_or_else(|| panic!("ts in {line:?}"));
        assert!(ts.is_finite() && ts >= 0.0, "bad ts in {line:?}");
        let prev = last_ts.entry(tid).or_insert(0.0);
        assert!(
            ts >= *prev,
            "lane {tid}: ts went backwards ({ts} after {prev})"
        );
        *prev = ts;
        assert_eq!(num_field(line, "pid"), Some(1.0), "single-process trace");

        let name = str_field(line, "name").expect("name field").to_string();
        match ph {
            "B" => {
                b_records += 1;
                if !names_seen.contains(&name) {
                    names_seen.push(name.clone());
                }
                stacks.entry(tid).or_default().push(name);
            }
            "E" => {
                let open = stacks
                    .entry(tid)
                    .or_default()
                    .pop()
                    .unwrap_or_else(|| panic!("lane {tid}: E with no open B"));
                assert_eq!(open, name, "lane {tid}: E closes the innermost B");
            }
            "i" => {} // instant marker (non-span event), no pairing
            other => panic!("unexpected phase {other:?} in {line:?}"),
        }
    }

    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "lane {tid} left spans open: {stack:?}");
    }
    assert!(
        b_records >= STEPS * 3,
        "expected at least sim_step+otem_step+mpc_solve per step, got {b_records}"
    );
    for expected in ["sim_step", "otem_step", "mpc_solve", "rollout", "iteration"] {
        assert!(
            names_seen.iter().any(|n| n == expected),
            "phase {expected:?} missing from the trace (saw {names_seen:?})"
        );
    }
}
