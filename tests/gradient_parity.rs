//! FD-vs-adjoint parity: the hand-derived reverse-mode gradient of the
//! MPC rollout objective must reproduce finite differences to ≤ 1e-6
//! relative error across random plant states, horizons, and move-block
//! sizes — and stay finite on the degenerate corners where finite
//! differences themselves become ill-conditioned.
//!
//! The FD reference is O(h⁴) Richardson-extrapolated central
//! differences: the `w2` aging term's Arrhenius curvature gives plain
//! central differences at `h ≈ cbrt(ε)` a truncation error of the same
//! order as the tolerance being asserted, which would test the FD
//! scheme, not the adjoint. Decision points are drawn away from the
//! objective's measure-zero kink set (converter no-load ramp at zero
//! cap share, the duty box bounds), where one-sided derivatives differ
//! and neither FD nor the adjoint is canonical.

use otem_repro::control::mpc::{rollout_cost, rollout_gradient_adjoint, MpcConfig, MpcPlant};
use otem_repro::control::SystemConfig;
use otem_repro::hees::HybridHees;
use otem_repro::thermal::{CoolingPlant, ThermalModel, ThermalState};
use otem_repro::units::{Farads, Kelvin, Ratio, Seconds, Watts};
use proptest::prelude::*;

fn plant(config: &SystemConfig, soc: f64, soe: f64, celsius: f64) -> MpcPlant {
    let mut hees = HybridHees::ev_default(Farads::new(25_000.0)).expect("valid preset");
    hees.set_state(Ratio::new(soc), Ratio::new(soe));
    MpcPlant {
        hees,
        thermal: ThermalModel::new(config.thermal_active).expect("valid thermal"),
        plant: CoolingPlant::new(config.plant).expect("valid plant"),
        state: ThermalState::uniform(Kelvin::from_celsius(celsius)),
        aging: config.aging,
        soc_min: config.soc_min,
        soe_min: config.soe_min,
        battery_power_max: config.battery_power_max,
        cap_power_max: config.cap_power_max,
    }
}

/// Deterministic splitmix64 — fills load forecasts and decision vectors
/// from one seed so every proptest case is reproducible on its own.
struct Mix(u64);

impl Mix {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }
}

/// A decision vector with every coordinate away from the kink set: cap
/// shares with magnitude in `[0.03, 0.9]` (the converter's no-load-loss
/// ramp has a genuine kink at zero power), duties in `[0.05, 0.95]`
/// (inside the clamp).
fn interior_decisions(n: usize, mix: &mut Mix) -> Vec<f64> {
    let mut z = vec![0.0; 2 * n];
    for zi in z.iter_mut().take(n) {
        let magnitude = mix.range(0.03, 0.9);
        *zi = if mix.unit() < 0.5 {
            magnitude
        } else {
            -magnitude
        };
    }
    for zi in z.iter_mut().skip(n) {
        *zi = mix.range(0.05, 0.95);
    }
    z
}

/// O(h⁴) Richardson-extrapolated central differences.
fn richardson_gradient(z: &[f64], mut f: impl FnMut(&[f64]) -> f64) -> Vec<f64> {
    let h = 1e-4;
    let mut zp = z.to_vec();
    let mut grad = vec![0.0; z.len()];
    for (i, g) in grad.iter_mut().enumerate() {
        let orig = zp[i];
        let mut central = |step: f64| {
            zp[i] = orig + step;
            let fp = f(&zp);
            zp[i] = orig - step;
            let fm = f(&zp);
            zp[i] = orig;
            (fp - fm) / (2.0 * step)
        };
        let coarse = central(h);
        let fine = central(h / 2.0);
        *g = (4.0 * fine - coarse) / 3.0;
    }
    grad
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn adjoint_matches_fd_across_random_states_and_horizons(
        soc in 0.35..0.95f64,
        soe in 0.15..0.9f64,
        celsius in 15.0..41.0f64,
        horizon in 1usize..41,
        block in prop_oneof![Just(1usize), Just(5usize)],
        seed in 0u64..1_000_000,
    ) {
        let config = SystemConfig::default();
        let p = plant(&config, soc, soe, celsius);
        let cfg = MpcConfig {
            horizon,
            block_size: block,
            ..MpcConfig::default()
        };
        // Move blocking stretches each decision over `block` control
        // periods; the rollout sees that as a longer step.
        let dt = Seconds::new(block as f64);
        let mut mix = Mix(seed);
        let loads: Vec<Watts> = (0..horizon)
            .map(|_| Watts::new(mix.range(-20_000.0, 70_000.0)))
            .collect();
        let z = interior_decisions(horizon, &mut mix);

        let mut adjoint = vec![0.0; 2 * horizon];
        let cost = rollout_gradient_adjoint(&p, &loads, dt, &cfg, &z, &mut adjoint);
        // Taped forward pass must be bit-identical to the objective.
        prop_assert_eq!(
            cost.to_bits(),
            rollout_cost(&p, &loads, dt, &cfg, &z).to_bits()
        );

        let fd = richardson_gradient(&z, |zz| rollout_cost(&p, &loads, dt, &cfg, zz));
        let scale = fd.iter().fold(1.0_f64, |m, g| m.max(g.abs()));
        for (i, (a, f)) in adjoint.iter().zip(fd.iter()).enumerate() {
            prop_assert!(
                (a - f).abs() <= 1e-6 * scale,
                "coordinate {} (horizon {}, block {}): adjoint {:.9e} vs FD {:.9e}",
                i, horizon, block, a, f
            );
        }
    }
}

/// A zero-length forecast leaves every stage load at zero and the
/// terminal C-rate at its floor; central differences still work here,
/// but the division-heavy terminal term makes it the classic corner for
/// sign mistakes. The adjoint must stay finite and keep matching.
#[test]
fn zero_length_forecast_stays_finite_and_matches_fd() {
    let config = SystemConfig::default();
    let p = plant(&config, 0.7, 0.5, 36.0);
    let n = 6;
    let cfg = MpcConfig {
        horizon: n,
        ..MpcConfig::default()
    };
    let loads: [Watts; 0] = [];
    let dt = Seconds::new(1.0);
    let mut mix = Mix(7);
    let z = interior_decisions(n, &mut mix);

    let mut adjoint = vec![0.0; 2 * n];
    let cost = rollout_gradient_adjoint(&p, &loads, dt, &cfg, &z, &mut adjoint);
    assert!(cost.is_finite());
    assert!(adjoint.iter().all(|g| g.is_finite()), "{adjoint:?}");

    let fd = richardson_gradient(&z, |zz| rollout_cost(&p, &loads, dt, &cfg, zz));
    let scale = fd.iter().fold(1.0_f64, |m, g| m.max(g.abs()));
    for (i, (a, f)) in adjoint.iter().zip(fd.iter()).enumerate() {
        assert!(
            (a - f).abs() <= 1e-6 * scale,
            "coordinate {i}: adjoint {a:.9e} vs FD {f:.9e}"
        );
    }
}

/// A saturated ultracapacitor pins the bank on its feasibility clamp:
/// the objective is only piecewise-smooth there and finite differences
/// straddle the clamp branches (step size comparable to the distance to
/// the branch boundary), so parity is not defined — but the adjoint
/// must differentiate the executed branch and return finite numbers.
#[test]
fn saturated_ultracap_keeps_the_adjoint_finite() {
    let config = SystemConfig::default();
    for (soe, share) in [(0.0, 0.95), (1.0, -0.95), (0.02, 0.99)] {
        let p = plant(&config, 0.8, soe, 34.0);
        let n = 8;
        let cfg = MpcConfig {
            horizon: n,
            ..MpcConfig::default()
        };
        let loads = vec![Watts::new(45_000.0); n];
        let dt = Seconds::new(1.0);
        let mut z = vec![0.0; 2 * n];
        z[..n].fill(share); // slam the bank against its clamp
        z[n..].fill(0.4);

        let mut adjoint = vec![0.0; 2 * n];
        let cost = rollout_gradient_adjoint(&p, &loads, dt, &cfg, &z, &mut adjoint);
        assert!(cost.is_finite(), "soe {soe}, share {share}");
        assert!(
            adjoint.iter().all(|g| g.is_finite()),
            "soe {soe}, share {share}: {adjoint:?}"
        );
        // And the taped forward pass is still the exact objective.
        assert_eq!(
            cost.to_bits(),
            rollout_cost(&p, &loads, dt, &cfg, &z).to_bits()
        );
    }
}
