//! The telemetry layer's zero-cost contract, enforced end to end:
//!
//! 1. **Bit-identity** — `Simulator::run_with` returns a
//!    `SimulationResult` that is `PartialEq`-equal to `Simulator::run`'s
//!    for *any* sink (`NullSink` and `MemorySink` both checked, over the
//!    full MPC/solver/plant stack).
//! 2. **Allocation-freedom** — driving the instrumented path with a
//!    `NullSink` performs exactly as many heap allocations as the
//!    uninstrumented path: event emission is `Copy`-only and the no-op
//!    sink never buffers.
//!
//! This file holds a single `#[test]` on purpose: the counting global
//! allocator below is process-wide, and a sibling test running
//! concurrently would pollute the counts.

use otem_repro::control::mpc::MpcConfig;
use otem_repro::control::policy::Otem;
use otem_repro::control::{Simulator, SystemConfig};
use otem_repro::drivecycle::PowerTrace;
use otem_repro::solver::GradientMode;
use otem_repro::telemetry::{MemorySink, NullSink};
use otem_repro::units::{Seconds, Watts};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation (and reallocation) made by the process.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A short mixed drive/regen pattern — enough steps to warm the MPC's
/// workspace pool and exercise cooling, saturation, and solver events.
fn trace() -> PowerTrace {
    let samples: Vec<Watts> = (0..40)
        .map(|k| match k % 8 {
            0..=2 => Watts::new(35_000.0),
            3..=5 => Watts::new(8_000.0),
            6 => Watts::new(-15_000.0),
            _ => Watts::ZERO,
        })
        .collect();
    PowerTrace::new(Seconds::new(1.0), samples)
}

fn controller(config: &SystemConfig) -> Otem {
    // A small horizon keeps the debug-build MPC affordable while still
    // running the full solve / pool / telemetry machinery every step.
    Otem::with_mpc(
        config,
        MpcConfig {
            horizon: 4,
            solver_iterations: 8,
            ..MpcConfig::default()
        },
    )
    .expect("valid")
}

#[test]
fn null_sink_is_bit_identical_and_allocation_free() {
    let config = SystemConfig::stress_rig();
    let trace = trace();
    let sim = Simulator::new(&config);

    // Warm-up run: fault in lazy initialisation (thread-local caches,
    // the test harness's own buffers) so the measured runs below do
    // identical work.
    let _ = sim.run(&mut controller(&config), &trace);

    let before_plain = allocations();
    let plain = sim.run(&mut controller(&config), &trace);
    let plain_allocs = allocations() - before_plain;

    let before_null = allocations();
    let null = sim.run_with(&mut controller(&config), &trace, &NullSink);
    let null_allocs = allocations() - before_null;

    let memory_sink = MemorySink::new();
    let observed = sim.run_with(&mut controller(&config), &trace, &memory_sink);

    // 1. Bit-identity: telemetry is strictly observational.
    assert_eq!(plain, null, "NullSink run diverged from the plain run");
    assert_eq!(
        plain, observed,
        "MemorySink run diverged from the plain run"
    );

    // The observed run really did capture the stack's events.
    assert_eq!(memory_sink.count_kind("step_completed"), trace.len());
    assert!(memory_sink.count_kind("solver_iteration") > 0);
    assert!(memory_sink.count_kind("gradient_eval") > 0);
    assert!(memory_sink.count_kind("pool_hit") > 0);

    // …including the hierarchical spans, balanced start-for-end. Every
    // step opens at least sim_step → otem_step → mpc_solve.
    let span_starts = memory_sink.count_kind("span_start");
    assert_eq!(
        span_starts,
        memory_sink.count_kind("span_end"),
        "span stream must be balanced"
    );
    assert!(
        span_starts >= trace.len() * 3,
        "expected ≥3 spans per step, got {span_starts} over {} steps",
        trace.len()
    );

    // 2. Allocation parity: the NullSink path may not touch the heap any
    // more than the uninstrumented path does.
    assert_eq!(
        plain_allocs, null_allocs,
        "NullSink instrumentation allocated ({null_allocs} vs {plain_allocs})"
    );
    assert!(plain_allocs > 0, "counting allocator not engaged");

    // 3. Steady-state solver work is allocation-free: with the workspace
    // pool warm (second run on the same controller) and the adjoint tape
    // gradient (no per-gradient thread spawns, unlike the parallel-FD
    // fan), quadrupling the per-solve iteration budget — each iteration
    // doing a gradient, projections, and up to 40 backtracking trials —
    // must not change the run's allocation count at all. Anything the
    // solver loop heap-allocated per iteration would scale with the
    // budget and break the equality.
    let budget_allocs = |iterations: usize| {
        let mut otem = Otem::with_mpc(
            &config,
            MpcConfig {
                horizon: 4,
                solver_iterations: iterations,
                gradient_mode: GradientMode::Adjoint,
                ..MpcConfig::default()
            },
        )
        .expect("valid");
        let _ = sim.run(&mut otem, &trace); // warm the pool + tape
        let before = allocations();
        let _ = sim.run(&mut otem, &trace);
        allocations() - before
    };
    let lean = budget_allocs(2);
    let heavy = budget_allocs(8);
    assert_eq!(
        lean, heavy,
        "per-iteration solver work hit the heap ({lean} allocs at 2 \
         iterations vs {heavy} at 8)"
    );
    assert!(lean > 0, "counting allocator not engaged for the MPC runs");
}
