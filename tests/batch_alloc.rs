//! Allocation-parity pin for the batched rollout workspace.
//!
//! The SoA batch kernel runs inside the MPC's pooled
//! `RolloutWorkspace`, so in steady state a batched line search must
//! perform **no per-lane, per-step, or per-rollout heap allocations**:
//! widening the ladder or the horizon changes the steady-state
//! allocation count not at all, and relative to the scalar ladder a
//! batched solve pays at most the small once-per-solve candidate
//! scratch.
//!
//! This file holds a single `#[test]` on purpose: the counting global
//! allocator below is process-wide, and a sibling test running
//! concurrently would pollute the counts (same discipline as
//! `tests/telemetry_parity.rs`).

use otem_repro::control::mpc::{Mpc, MpcConfig, MpcPlant};
use otem_repro::control::SystemConfig;
use otem_repro::hees::HybridHees;
use otem_repro::thermal::{CoolingPlant, ThermalModel, ThermalState};
use otem_repro::units::{Farads, Kelvin, Ratio, Seconds, Watts};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation (and reallocation) made by the process.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

const SOLVES: u64 = 8;

fn plant(config: &SystemConfig) -> MpcPlant {
    let mut hees = HybridHees::ev_default(Farads::new(25_000.0)).expect("valid preset");
    hees.set_state(Ratio::new(0.8), Ratio::new(0.6));
    MpcPlant {
        hees,
        thermal: ThermalModel::new(config.thermal_active).expect("valid thermal"),
        plant: CoolingPlant::new(config.plant).expect("valid plant"),
        state: ThermalState::uniform(Kelvin::from_celsius(33.0)),
        aging: config.aging,
        soc_min: config.soc_min,
        soe_min: config.soe_min,
        battery_power_max: config.battery_power_max,
        cap_power_max: config.cap_power_max,
    }
}

/// Allocations across `SOLVES` fully warm-started solves at the given
/// ladder width and horizon (a fresh `Mpc` each call; three warm-up
/// solves populate the workspace pool, the warm start, and the batch
/// lanes before counting begins).
fn steady_allocs(batch: usize, horizon: usize) -> u64 {
    let config = SystemConfig::default();
    let p = plant(&config);
    let loads: Vec<Watts> = (0..horizon)
        .map(|k| Watts::new(8_000.0 + 9_000.0 * (k % 3) as f64))
        .collect();
    let dt = Seconds::new(1.0);
    let mut mpc = Mpc::new(MpcConfig {
        horizon,
        batch_line_search: batch,
        solver_iterations: 12,
        ..MpcConfig::default()
    });
    for _ in 0..3 {
        let d = mpc.solve(&p, &loads, dt);
        assert!(d.cap_bus.value().is_finite(), "warm-up solve diverged");
    }
    if batch >= 2 {
        assert!(
            mpc.batched_rollouts() > 0,
            "width-{batch} warm-up never hit the batch kernel"
        );
    }
    let before = allocations();
    for _ in 0..SOLVES {
        let _ = mpc.solve(&p, &loads, dt);
    }
    allocations() - before
}

#[test]
fn batched_workspace_is_steady_state_allocation_parity_with_scalar() {
    // Throwaway run: fault in lazy process-level initialisation so the
    // measured runs below do identical work.
    let _ = steady_allocs(4, 6);

    let scalar_h6 = steady_allocs(0, 6);
    let scalar_h12 = steady_allocs(0, 12);
    let b4_h6 = steady_allocs(4, 6);
    let b8_h6 = steady_allocs(8, 6);
    let b4_h12 = steady_allocs(4, 12);
    let b8_h12 = steady_allocs(8, 12);

    // No per-lane allocations: doubling the ladder width changes the
    // steady-state allocation count not at all.
    assert_eq!(
        b4_h6, b8_h6,
        "widening the ladder changed the allocation count at horizon 6"
    );
    assert_eq!(
        b4_h12, b8_h12,
        "widening the ladder changed the allocation count at horizon 12"
    );

    // No per-step allocations: the batched-minus-scalar overhead is the
    // same at both horizons (the once-per-solve candidate scratch), so
    // nothing in the batch kernel scales with the rollout length.
    let delta_h6 = b4_h6 as i64 - scalar_h6 as i64;
    let delta_h12 = b4_h12 as i64 - scalar_h12 as i64;
    assert_eq!(
        delta_h6, delta_h12,
        "batched allocation overhead scales with the horizon \
         (h6: {b4_h6} vs {scalar_h6}, h12: {b4_h12} vs {scalar_h12})"
    );

    // And that overhead is at most a handful of vectors per solve.
    assert!(
        delta_h6 <= 8 * SOLVES as i64,
        "batched solves allocate {delta_h6} more than scalar over {SOLVES} solves"
    );
}
