//! End-to-end integration: synthesise a cycle, build the power trace,
//! run every methodology, and check the paper's qualitative orderings.

use otem_repro::control::mpc::MpcConfig;
use otem_repro::control::policy::{ActiveCooling, Dual, Otem, Parallel};
use otem_repro::control::{Controller, Simulator, SystemConfig};
use otem_repro::drivecycle::{standard, PowerTrace, Powertrain, StandardCycle, VehicleParams};
use otem_repro::units::{Seconds, Watts};

/// A shortened US06 prefix: enough structure to exercise every policy
/// while keeping the (debug-build) MPC affordable in tests.
fn short_trace() -> PowerTrace {
    let cycle = standard(StandardCycle::Us06).expect("synthesis");
    let trace = Powertrain::new(VehicleParams::midsize_ev())
        .expect("vehicle")
        .power_trace(&cycle);
    PowerTrace::new(Seconds::new(1.0), trace.window(60, 180))
}

fn fast_otem(config: &SystemConfig) -> Otem {
    Otem::with_mpc(
        config,
        MpcConfig {
            horizon: 6,
            solver_iterations: 12,
            ..MpcConfig::default()
        },
    )
    .expect("valid")
}

#[test]
fn all_methodologies_complete_the_route() {
    let config = SystemConfig::default();
    let trace = short_trace();
    let sim = Simulator::new(&config);

    let mut controllers: Vec<Box<dyn Controller>> = vec![
        Box::new(Parallel::new(&config).unwrap()),
        Box::new(ActiveCooling::new(&config).unwrap()),
        Box::new(Dual::new(&config).unwrap()),
        Box::new(fast_otem(&config)),
    ];
    for controller in controllers.iter_mut() {
        let r = sim.run(controller.as_mut(), &trace);
        assert_eq!(r.records.len(), trace.len(), "{}", r.methodology);
        assert!(r.capacity_loss() > 0.0, "{}", r.methodology);
        assert!(r.energy().value() > 0.0, "{}", r.methodology);
        // The route must be essentially served (< 2 % shortfall).
        let served = r.shortfall_energy().value() / r.energy().value();
        assert!(served < 0.02, "{} shortfall {served:.3}", r.methodology);
    }
}

#[test]
fn otem_beats_battery_only_on_capacity_loss() {
    let config = SystemConfig::default();
    let trace = short_trace();
    let sim = Simulator::new(&config);

    let mut cooling = ActiveCooling::new(&config).unwrap();
    let cooling_result = sim.run(&mut cooling, &trace);

    let mut otem = fast_otem(&config);
    let otem_result = sim.run(&mut otem, &trace);

    assert!(
        otem_result.capacity_loss() < cooling_result.capacity_loss(),
        "OTEM {:.3e} vs ActiveCooling {:.3e}",
        otem_result.capacity_loss(),
        cooling_result.capacity_loss()
    );
}

#[test]
fn no_methodology_violates_state_bounds() {
    let config = SystemConfig::default();
    let trace = short_trace();
    let sim = Simulator::new(&config);

    let mut controllers: Vec<Box<dyn Controller>> = vec![
        Box::new(Parallel::new(&config).unwrap()),
        Box::new(Dual::new(&config).unwrap()),
        Box::new(fast_otem(&config)),
    ];
    for controller in controllers.iter_mut() {
        let r = sim.run(controller.as_mut(), &trace);
        for (t, rec) in r.records.iter().enumerate() {
            assert!(
                (0.0..=1.0).contains(&rec.state.soc.value()),
                "{} SoC out of range at {t}",
                r.methodology
            );
            assert!(
                (0.0..=1.0).contains(&rec.state.soe.value()),
                "{} SoE out of range at {t}",
                r.methodology
            );
            assert!(
                rec.state.battery_temp.value().is_finite()
                    && (250.0..400.0).contains(&rec.state.battery_temp.value()),
                "{} temperature diverged at {t}: {:?}",
                r.methodology,
                rec.state.battery_temp
            );
        }
    }
}

#[test]
fn regen_heavy_route_recovers_energy() {
    // A route that is mostly braking must leave the storage fuller than
    // an equivalent flat route.
    let config = SystemConfig::default();
    let sim = Simulator::new(&config);
    let mut samples = vec![Watts::new(30_000.0); 40];
    samples.extend(vec![Watts::new(-25_000.0); 40]);
    let trace = PowerTrace::new(Seconds::new(1.0), samples);

    let mut dual = Dual::new(&config).unwrap();
    let r = sim.run(&mut dual, &trace);
    let final_soc = r.records.last().unwrap().state.soc;
    let mid_soc = r.records[39].state.soc;
    assert!(
        final_soc > mid_soc,
        "regen not stored: {final_soc:?} vs {mid_soc:?}"
    );
}
