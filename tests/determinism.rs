//! Reproducibility: the whole pipeline is deterministic — identical
//! configurations produce bit-identical results across runs.

use otem_repro::control::mpc::MpcConfig;
use otem_repro::control::policy::{Dual, Otem, Parallel};
use otem_repro::control::{Simulator, SystemConfig};
use otem_repro::drivecycle::{standard, PowerTrace, Powertrain, StandardCycle, VehicleParams};
use otem_repro::solver::GradientMode;

#[test]
fn cycle_synthesis_is_reproducible() {
    let a = standard(StandardCycle::La92).unwrap();
    let b = standard(StandardCycle::La92).unwrap();
    assert_eq!(a, b);
}

#[test]
fn simulation_is_reproducible() {
    let config = SystemConfig::default();
    let cycle = standard(StandardCycle::Nycc).unwrap();
    let trace = Powertrain::new(VehicleParams::midsize_ev())
        .unwrap()
        .power_trace(&cycle);
    let sim = Simulator::new(&config);

    let mut c1 = Parallel::new(&config).unwrap();
    let mut c2 = Parallel::new(&config).unwrap();
    let r1 = sim.run(&mut c1, &trace);
    let r2 = sim.run(&mut c2, &trace);
    assert_eq!(r1, r2);

    let mut d1 = Dual::new(&config).unwrap();
    let mut d2 = Dual::new(&config).unwrap();
    assert_eq!(sim.run(&mut d1, &trace), sim.run(&mut d2, &trace));
}

/// Parallelising the MPC's finite-difference gradient must not change a
/// single bit of the closed-loop result: every coordinate of the
/// gradient is computed from the same perturbed points in the same IEEE
/// order regardless of which thread evaluates it.
#[test]
fn parallel_gradient_mode_matches_serial_closed_loop() {
    let config = SystemConfig::default();
    let cycle = standard(StandardCycle::Nycc).unwrap();
    let full = Powertrain::new(VehicleParams::midsize_ev())
        .unwrap()
        .power_trace(&cycle);
    // A short prefix keeps the test quick; 60 warm-started solves are
    // plenty to surface any cross-thread divergence.
    let trace = PowerTrace::new(full.dt(), full.samples()[..60].to_vec());
    let sim = Simulator::new(&config);

    let mpc = |mode: GradientMode| MpcConfig {
        horizon: 6,
        solver_iterations: 15,
        gradient_mode: mode,
        ..MpcConfig::default()
    };
    let mut serial = Otem::with_mpc(&config, mpc(GradientMode::Serial)).unwrap();
    let mut parallel = Otem::with_mpc(&config, mpc(GradientMode::Parallel { threads: 3 })).unwrap();
    assert_eq!(sim.run(&mut serial, &trace), sim.run(&mut parallel, &trace));
}
