//! Reproducibility: the whole pipeline is deterministic — identical
//! configurations produce bit-identical results across runs.

use otem_repro::control::policy::{Dual, Parallel};
use otem_repro::control::{Simulator, SystemConfig};
use otem_repro::drivecycle::{standard, Powertrain, StandardCycle, VehicleParams};

#[test]
fn cycle_synthesis_is_reproducible() {
    let a = standard(StandardCycle::La92).unwrap();
    let b = standard(StandardCycle::La92).unwrap();
    assert_eq!(a, b);
}

#[test]
fn simulation_is_reproducible() {
    let config = SystemConfig::default();
    let cycle = standard(StandardCycle::Nycc).unwrap();
    let trace = Powertrain::new(VehicleParams::midsize_ev())
        .unwrap()
        .power_trace(&cycle);
    let sim = Simulator::new(&config);

    let mut c1 = Parallel::new(&config).unwrap();
    let mut c2 = Parallel::new(&config).unwrap();
    let r1 = sim.run(&mut c1, &trace);
    let r2 = sim.run(&mut c2, &trace);
    assert_eq!(r1, r2);

    let mut d1 = Dual::new(&config).unwrap();
    let mut d2 = Dual::new(&config).unwrap();
    assert_eq!(sim.run(&mut d1, &trace), sim.run(&mut d2, &trace));
}
