//! Cross-crate energy-bookkeeping invariants: no architecture may create
//! energy, and every methodology's internal consumption must cover what
//! it delivered.

use otem_repro::control::policy::{Dual, Parallel};
use otem_repro::control::{Controller, Simulator, SystemConfig};
use otem_repro::drivecycle::PowerTrace;
use otem_repro::units::{Seconds, Watts};

fn pulse_trace() -> PowerTrace {
    let mut samples = Vec::new();
    for block in 0..6 {
        let level = if block % 2 == 0 { 8_000.0 } else { 45_000.0 };
        samples.extend(vec![Watts::new(level); 20]);
    }
    PowerTrace::new(Seconds::new(1.0), samples)
}

#[test]
fn internal_energy_covers_delivered_energy() {
    let config = SystemConfig::default();
    let sim = Simulator::new(&config);
    let trace = pulse_trace();

    let mut controllers: Vec<Box<dyn Controller>> = vec![
        Box::new(Parallel::new(&config).unwrap()),
        Box::new(Dual::new(&config).unwrap()),
    ];
    for controller in controllers.iter_mut() {
        let r = sim.run(controller.as_mut(), &trace);
        let delivered: f64 = r.records.iter().map(|rec| rec.hees.delivered.value()).sum();
        let internal: f64 = r.records.iter().map(|rec| rec.total_power().value()).sum();
        assert!(
            internal >= delivered - 1e-6,
            "{} created energy: internal {internal} < delivered {delivered}",
            r.methodology
        );
        // Losses are bounded: < 25 % of the delivered energy on this
        // moderate profile.
        assert!(
            internal < delivered * 1.25,
            "{} implausibly lossy: {internal} vs {delivered}",
            r.methodology
        );
    }
}

#[test]
fn battery_soc_drop_matches_charge_drawn() {
    // The coulomb counter must agree with the integrated pack current.
    let config = SystemConfig::default();
    let sim = Simulator::new(&config);
    let trace = pulse_trace();
    let mut dual = Dual::new(&config).unwrap();
    let initial_soc = dual.state().soc.value();
    let r = sim.run(&mut dual, &trace);
    let final_soc = r.records.last().unwrap().state.soc.value();
    assert!(final_soc < initial_soc);

    // Energy drawn from the battery ≈ ΔSoC · capacity · mean OCV; check
    // the order of magnitude (OCV varies a few percent over the window).
    let battery_energy: f64 = r
        .records
        .iter()
        .map(|rec| rec.hees.battery_internal.value())
        .sum();
    let pack_wh = 48.0 * 3.1 * 96.0 * 3.7; // p · Ah · s · V_nominal
    let implied = (initial_soc - final_soc) * pack_wh * 3600.0;
    let ratio = battery_energy / implied;
    assert!(
        (0.8..1.25).contains(&ratio),
        "coulomb/energy bookkeeping diverged: ratio {ratio}"
    );
}

#[test]
fn idle_route_consumes_almost_nothing() {
    let config = SystemConfig::default();
    let sim = Simulator::new(&config);
    let trace = PowerTrace::new(Seconds::new(1.0), vec![Watts::ZERO; 120]);
    let mut parallel = Parallel::new(&config).unwrap();
    let r = sim.run(&mut parallel, &trace);
    // Only equalisation trickle between the storages; tiny versus any
    // driving consumption.
    assert!(
        r.energy().value().abs() < 50_000.0,
        "idle energy {:?}",
        r.energy()
    );
}
