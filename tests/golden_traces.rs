//! Golden-trace regression suite: every methodology's closed-loop
//! behaviour on a fixed rig is pinned against compact reference traces
//! committed under `tests/golden/`.
//!
//! The rig is the paper's thermally stressed city-EV
//! (`SystemConfig::stress_rig` + `VehicleParams::compact_ev`) over the
//! first 120 s of US06 — long enough to exercise acceleration peaks,
//! regeneration, and the first thermal response of every controller,
//! short enough that even the (debug-build) MPC stays affordable.
//!
//! Any behavioural drift — a changed solver path, a reordered floating-
//! point reduction, a retuned default — fails these tests. If the change
//! is *intentional*, re-bless the references and review the diff:
//!
//! ```sh
//! OTEM_BLESS=1 cargo test --test golden_traces
//! git diff tests/golden/
//! ```

use otem_repro::control::policy::{ActiveCooling, Dual, Otem, Parallel};
use otem_repro::control::{Controller, SimulationResult, Simulator, SupervisedOtem, SystemConfig};
use otem_repro::drivecycle::{standard, PowerTrace, Powertrain, StandardCycle, VehicleParams};
use otem_repro::units::Seconds;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Steps of the route each golden trace covers.
const STEPS: usize = 120;

/// Relative tolerance for the comparison. The runs are deterministic, so
/// on the blessing platform the match is exact; the margin only absorbs
/// cross-platform libm / FMA differences.
const REL_TOL: f64 = 1e-6;

/// Absolute floors for quantities that legitimately pass through zero.
const ABS_TOL_TEMP_C: f64 = 1e-6;
const ABS_TOL_RATIO: f64 = 1e-9;
const ABS_TOL_POWER_W: f64 = 1e-2;

fn rig_trace() -> PowerTrace {
    let cycle = standard(StandardCycle::Us06).expect("synthesis");
    let trace = Powertrain::new(VehicleParams::compact_ev())
        .expect("vehicle")
        .power_trace(&cycle);
    PowerTrace::new(Seconds::new(1.0), trace.window(0, STEPS))
}

fn run(controller: &mut dyn Controller) -> SimulationResult {
    let config = SystemConfig::stress_rig();
    Simulator::new(&config).run(controller, &rig_trace())
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.csv"))
}

/// One golden row: the externally observable per-step quantities.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Row {
    step: usize,
    t_battery_c: f64,
    soc: f64,
    soe: f64,
    delivered_w: f64,
}

fn rows_of(result: &SimulationResult) -> Vec<Row> {
    result
        .records
        .iter()
        .enumerate()
        .map(|(step, r)| Row {
            step,
            t_battery_c: r.state.battery_temp.to_celsius().value(),
            soc: r.state.soc.value(),
            soe: r.state.soe.value(),
            delivered_w: r.hees.delivered.value(),
        })
        .collect()
}

fn encode(rows: &[Row]) -> String {
    let mut out = String::from("step,t_battery_c,soc,soe,delivered_w\n");
    for r in rows {
        writeln!(
            out,
            "{},{:.12e},{:.12e},{:.12e},{:.12e}",
            r.step, r.t_battery_c, r.soc, r.soe, r.delivered_w
        )
        .expect("string write");
    }
    out
}

fn decode(text: &str, path: &std::path::Path) -> Vec<Row> {
    text.lines()
        .skip(1) // header
        .filter(|l| !l.trim().is_empty())
        .map(|line| {
            let fields: Vec<&str> = line.split(',').collect();
            assert_eq!(fields.len(), 5, "malformed golden row in {path:?}: {line}");
            let num = |i: usize| -> f64 {
                fields[i]
                    .parse()
                    .unwrap_or_else(|e| panic!("bad field {i} in {path:?} ({line}): {e}"))
            };
            Row {
                step: fields[0].parse().expect("step index"),
                t_battery_c: num(1),
                soc: num(2),
                soe: num(3),
                delivered_w: num(4),
            }
        })
        .collect()
}

fn close(actual: f64, expected: f64, abs_floor: f64) -> bool {
    let tol = abs_floor.max(REL_TOL * expected.abs());
    (actual - expected).abs() <= tol
}

/// Runs `controller`, then either re-blesses the reference (when
/// `OTEM_BLESS` is set) or asserts the run matches it row by row.
fn check(name: &str, controller: &mut dyn Controller) {
    let result = run(controller);
    let rows = rows_of(&result);
    assert_eq!(rows.len(), STEPS, "route truncated for {name}");
    let path = golden_path(name);

    if std::env::var_os("OTEM_BLESS").is_some() {
        std::fs::write(&path, encode(&rows)).expect("write golden");
        eprintln!("blessed {path:?}");
        return;
    }

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden trace {path:?} ({e}); generate it with \
             OTEM_BLESS=1 cargo test --test golden_traces"
        )
    });
    let expected = decode(&text, &path);
    assert_eq!(expected.len(), rows.len(), "{name}: golden length mismatch");

    for (got, want) in rows.iter().zip(&expected) {
        assert_eq!(got.step, want.step, "{name}: step index drift");
        let t = got.step;
        assert!(
            close(got.t_battery_c, want.t_battery_c, ABS_TOL_TEMP_C),
            "{name} step {t}: T_b {} != golden {}",
            got.t_battery_c,
            want.t_battery_c
        );
        assert!(
            close(got.soc, want.soc, ABS_TOL_RATIO),
            "{name} step {t}: SoC {} != golden {}",
            got.soc,
            want.soc
        );
        assert!(
            close(got.soe, want.soe, ABS_TOL_RATIO),
            "{name} step {t}: SoE {} != golden {}",
            got.soe,
            want.soe
        );
        assert!(
            close(got.delivered_w, want.delivered_w, ABS_TOL_POWER_W),
            "{name} step {t}: delivered {} != golden {}",
            got.delivered_w,
            want.delivered_w
        );
    }
}

#[test]
fn golden_parallel() {
    let config = SystemConfig::stress_rig();
    let mut c = Parallel::new(&config).expect("valid");
    check("parallel", &mut c);
}

#[test]
fn golden_active_cooling() {
    let config = SystemConfig::stress_rig();
    let mut c = ActiveCooling::new(&config).expect("valid");
    check("active_cooling", &mut c);
}

#[test]
fn golden_dual() {
    let config = SystemConfig::stress_rig();
    let mut c = Dual::new(&config).expect("valid");
    check("dual", &mut c);
}

#[test]
fn golden_otem() {
    let config = SystemConfig::stress_rig();
    let mut c = Otem::new(&config).expect("valid");
    check("otem", &mut c);
}

fn adjoint_otem() -> Otem {
    use otem_repro::control::mpc::MpcConfig;
    use otem_repro::solver::GradientMode;

    let config = SystemConfig::stress_rig();
    Otem::with_mpc(
        &config,
        MpcConfig {
            gradient_mode: GradientMode::Adjoint,
            ..MpcConfig::default()
        },
    )
    .expect("valid")
}

/// The adjoint gradient's own closed-loop pin: the reverse-mode sweep
/// drives the same rig and its trace is frozen against
/// `tests/golden/otem_adjoint.csv` with the full golden tolerances, so
/// any behavioural drift in the tape or backward recursion fails here
/// exactly like a solver change fails `golden_otem`.
#[test]
fn golden_otem_adjoint() {
    check("otem_adjoint", &mut adjoint_otem());
}

/// Cross-mode contract: the adjoint and finite-difference gradients must
/// land on the *same physical behaviour*. Bit-level trajectory identity
/// is not achievable — the solver stops on an iteration budget, warm
/// starts carry each solve's endpoint into the next, and wherever an
/// evaluation sits within a finite-difference step of a clamp branch the
/// FD stencil straddles branches while the adjoint differentiates the
/// executed one, so the iterate paths are free to split at kinks. (At
/// smooth points the gradients agree to ≤ 1e-6 — see
/// `tests/gradient_parity.rs` — and the adjoint adopts central-
/// difference subgradient conventions *on* the kink set.) What must
/// hold is physical agreement over the whole route: battery temperature
/// within 0.2 °C, states of charge/energy within 5e-4 / 5e-3, and
/// cumulative delivered energy within 0.5 %. Measured slack is ≥ 3× on
/// every bound.
#[test]
fn adjoint_gradient_agrees_with_the_fd_golden_physically() {
    let result = run(&mut adjoint_otem());
    let rows = rows_of(&result);
    assert_eq!(rows.len(), STEPS, "route truncated for adjoint otem");

    let path = golden_path("otem");
    let text = std::fs::read_to_string(&path).expect("otem golden present");
    let expected = decode(&text, &path);
    let mut energy_got = 0.0;
    let mut energy_want = 0.0;
    for (got, want) in rows.iter().zip(&expected) {
        let t = got.step;
        assert!(
            (got.t_battery_c - want.t_battery_c).abs() <= 0.2,
            "adjoint otem step {t}: T_b {} vs FD golden {}",
            got.t_battery_c,
            want.t_battery_c
        );
        assert!(
            (got.soc - want.soc).abs() <= 5e-4,
            "adjoint otem step {t}: SoC {} vs FD golden {}",
            got.soc,
            want.soc
        );
        assert!(
            (got.soe - want.soe).abs() <= 5e-3,
            "adjoint otem step {t}: SoE {} vs FD golden {}",
            got.soe,
            want.soe
        );
        energy_got += got.delivered_w;
        energy_want += want.delivered_w;
    }
    let rel = (energy_got - energy_want).abs() / energy_want.abs().max(1.0);
    assert!(
        rel <= 5e-3,
        "delivered energy drift {rel:.3e} ({energy_got:.4e} vs {energy_want:.4e} W·s)"
    );
}

fn gauss_newton_otem() -> Otem {
    use otem_repro::control::mpc::MpcConfig;
    use otem_repro::solver::GradientMode;

    let config = SystemConfig::stress_rig();
    Otem::with_mpc(
        &config,
        MpcConfig {
            gradient_mode: GradientMode::GaussNewton,
            ..MpcConfig::default()
        },
    )
    .expect("valid")
}

/// The tape-curvature mode's own closed-loop pin: Gauss-Newton on the
/// adjoint tape drives the same rig and its trace is frozen against
/// `tests/golden/otem_gauss_newton.csv` with the full golden tolerances,
/// so drift in the damped-normal-equations path, the active-set
/// reduction, or the trust-region control fails here exactly like a
/// solver change fails `golden_otem`.
#[test]
fn golden_otem_gauss_newton() {
    check("otem_gauss_newton", &mut gauss_newton_otem());
}

/// Cross-mode contract for the second-order path: Gauss-Newton takes
/// different *iterates* than projected first-order descent (curvature
/// steps, Armijo acceptance, trust-region damping), so its trajectory is
/// free to split from the FD golden at every solve — and on this
/// penalty-saturated hot rig it splits further than the adjoint mode
/// does, because the Gauss-Newton model truncates the relu-penalty
/// Hessian term (`r·∇²r`) that dominates the true curvature here. The
/// bounds are therefore wider than `adjoint_gradient_agrees_…`'s, set at
/// ≈ 2× the measured full-route maxima (0.57 °C, 3.5e-3 SoC, 4.6e-2
/// SoE, 5.1e-3 relative energy): same thermal envelope within 1 °C,
/// states within 7e-3 / 1e-1, cumulative delivered energy within 1.5 %.
/// Bit-level identity for the mode lives in `golden_otem_gauss_newton`.
#[test]
fn gauss_newton_agrees_with_the_fd_golden_physically() {
    let result = run(&mut gauss_newton_otem());
    let rows = rows_of(&result);
    assert_eq!(rows.len(), STEPS, "route truncated for gauss-newton otem");

    let path = golden_path("otem");
    let text = std::fs::read_to_string(&path).expect("otem golden present");
    let expected = decode(&text, &path);
    let mut energy_got = 0.0;
    let mut energy_want = 0.0;
    for (got, want) in rows.iter().zip(&expected) {
        let t = got.step;
        assert!(
            (got.t_battery_c - want.t_battery_c).abs() <= 1.0,
            "gauss-newton otem step {t}: T_b {} vs FD golden {}",
            got.t_battery_c,
            want.t_battery_c
        );
        assert!(
            (got.soc - want.soc).abs() <= 7e-3,
            "gauss-newton otem step {t}: SoC {} vs FD golden {}",
            got.soc,
            want.soc
        );
        assert!(
            (got.soe - want.soe).abs() <= 1e-1,
            "gauss-newton otem step {t}: SoE {} vs FD golden {}",
            got.soe,
            want.soe
        );
        energy_got += got.delivered_w;
        energy_want += want.delivered_w;
    }
    let rel = (energy_got - energy_want).abs() / energy_want.abs().max(1.0);
    assert!(
        rel <= 1.5e-2,
        "delivered energy drift {rel:.3e} ({energy_got:.4e} vs {energy_want:.4e} W·s)"
    );
}

/// The supervisor's zero-cost contract: on the nominal rig it must be
/// invisible — bit-identical records to unsupervised OTEM (same golden
/// trace, no new CSV) and a silent degradation ladder. This is checked
/// in-memory against the *unsupervised* run rather than a separate
/// golden file, so the two controllers can never drift apart unnoticed.
#[test]
fn golden_otem_supervised_is_bit_identical_on_nominal_route() {
    use otem_repro::telemetry::MemorySink;

    let config = SystemConfig::stress_rig();
    let trace = rig_trace();

    let mut plain = Otem::new(&config).expect("valid");
    let baseline = Simulator::new(&config).run(&mut plain, &trace);

    let mut supervised = SupervisedOtem::with_defaults(Otem::new(&config).expect("valid"));
    let sink = MemorySink::new();
    let result = Simulator::new(&config).run_with(&mut supervised, &trace, &sink);

    assert_eq!(result.records.len(), baseline.records.len());
    for (step, (sup, plain)) in result.records.iter().zip(&baseline.records).enumerate() {
        assert_eq!(
            sup.state.battery_temp.value().to_bits(),
            plain.state.battery_temp.value().to_bits(),
            "step {step}: supervised T_b drifted"
        );
        assert_eq!(
            sup.state.soc.value().to_bits(),
            plain.state.soc.value().to_bits()
        );
        assert_eq!(
            sup.state.soe.value().to_bits(),
            plain.state.soe.value().to_bits()
        );
        assert_eq!(
            sup.hees.delivered.value().to_bits(),
            plain.hees.delivered.value().to_bits()
        );
        assert_eq!(
            sup.cooling_power.value().to_bits(),
            plain.cooling_power.value().to_bits()
        );
    }

    // The ladder never fired on the healthy route.
    assert!(supervised.is_armed());
    assert_eq!(supervised.rejected(), 0);
    assert_eq!(supervised.fallbacks(), 0);
    assert_eq!(sink.count_kind("decision_rejected"), 0);
    assert_eq!(sink.count_kind("fallback_engaged"), 0);
    assert_eq!(sink.count_kind("mpc_rearmed"), 0);
    assert_eq!(sink.count_kind("fault_injected"), 0);

    // And the supervised run still matches the committed OTEM golden.
    let rows = rows_of(&result);
    let path = golden_path("otem");
    if std::env::var_os("OTEM_BLESS").is_none() {
        let text = std::fs::read_to_string(&path).expect("otem golden present");
        let expected = decode(&text, &path);
        for (got, want) in rows.iter().zip(&expected) {
            assert!(close(got.t_battery_c, want.t_battery_c, ABS_TOL_TEMP_C));
            assert!(close(got.soc, want.soc, ABS_TOL_RATIO));
            assert!(close(got.soe, want.soe, ABS_TOL_RATIO));
            assert!(close(got.delivered_w, want.delivered_w, ABS_TOL_POWER_W));
        }
    }
}
