//! Batched-vs-scalar bit-exactness, pinned by property tests.
//!
//! The SoA batch kernel and the fleet lockstep engine both promise the
//! same thing: running N rollouts (or N vehicles) in lockstep changes
//! **no bits** — every lane executes the exact scalar step body, so the
//! batch is a scheduling decision, never a numerical one. Two
//! properties enforce that:
//!
//! 1. **Kernel parity** — `rollout_cost_batch` reproduces
//!    `rollout_cost` bit for bit on every lane, across random plant
//!    states, horizons 1–41, and degenerate lane counts (1, 2, and
//!    non-powers-of-two).
//! 2. **Lockstep parity** — `FleetEngine` with lanes enabled produces
//!    `PartialEq`-equal summaries and an identical FNV-1a fleet
//!    checksum for campaigns forced onto each of the four controllers
//!    (Parallel, ActiveCooling, Dual, Otem), with every healthy step
//!    accounted to a lockstep sweep.

use otem_repro::control::batch::rollout_cost_batch;
use otem_repro::control::mpc::{rollout_cost, MpcConfig, MpcPlant};
use otem_repro::control::SystemConfig;
use otem_repro::fleet::{Campaign, FleetEngine, Methodology, Schedule};
use otem_repro::hees::HybridHees;
use otem_repro::thermal::{CoolingPlant, ThermalModel, ThermalState};
use otem_repro::units::{Farads, Kelvin, Ratio, Seconds, Watts};
use proptest::prelude::*;

fn plant(config: &SystemConfig, soc: f64, soe: f64, celsius: f64) -> MpcPlant {
    let mut hees = HybridHees::ev_default(Farads::new(25_000.0)).expect("valid preset");
    hees.set_state(Ratio::new(soc), Ratio::new(soe));
    MpcPlant {
        hees,
        thermal: ThermalModel::new(config.thermal_active).expect("valid thermal"),
        plant: CoolingPlant::new(config.plant).expect("valid plant"),
        state: ThermalState::uniform(Kelvin::from_celsius(celsius)),
        aging: config.aging,
        soc_min: config.soc_min,
        soe_min: config.soe_min,
        battery_power_max: config.battery_power_max,
        cap_power_max: config.cap_power_max,
    }
}

/// Deterministic splitmix64 — fills load forecasts and decision
/// matrices from one seed so every proptest case is reproducible.
struct Mix(u64);

impl Mix {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batched_kernel_matches_scalar_on_every_lane(
        soc in 0.35..0.95f64,
        soe in 0.15..0.9f64,
        celsius in 15.0..41.0f64,
        horizon in 1usize..=41,
        lanes in prop_oneof![Just(1usize), Just(2usize), Just(3usize), Just(5usize), Just(7usize)],
        seed in 0u64..1_000_000,
    ) {
        let config = SystemConfig::default();
        let p = plant(&config, soc, soe, celsius);
        let cfg = MpcConfig { horizon, ..MpcConfig::default() };
        let dt = Seconds::new(1.0);
        let mut mix = Mix(seed);
        let loads: Vec<Watts> = (0..horizon)
            .map(|_| Watts::new(mix.range(-20_000.0, 70_000.0)))
            .collect();
        // A full lane-major decision matrix, anywhere in the [0, 1]²
        // box — kinks included: both paths run the same step body, so
        // exactness must hold even on the clamp branches.
        let zs: Vec<f64> = (0..lanes * 2 * horizon).map(|_| mix.unit()).collect();

        let mut batched = vec![0.0; lanes];
        rollout_cost_batch(&p, &loads, dt, &cfg, &zs, lanes, &mut batched);
        for lane in 0..lanes {
            let z = &zs[lane * 2 * horizon..(lane + 1) * 2 * horizon];
            let scalar = rollout_cost(&p, &loads, dt, &cfg, z);
            prop_assert_eq!(scalar.to_bits(), batched[lane].to_bits());
        }
    }
}

proptest! {
    // Each case runs 4 methodologies x (1 scalar + 1 batched) campaign,
    // with an MPC fleet among them — a handful of cases is already a
    // broad sweep, and debug-build solver time adds up fast.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn lockstep_engine_matches_scalar_for_every_controller(
        seed in 0u64..1_000_000,
        lanes in prop_oneof![Just(1usize), Just(2usize), Just(3usize), Just(5usize)],
        vehicles in 1usize..=6,
    ) {
        for methodology in [
            Methodology::Parallel,
            Methodology::ActiveCooling,
            Methodology::Dual,
            Methodology::Otem,
        ] {
            let mut campaign = Campaign::synthetic(vehicles, seed);
            for spec in &mut campaign.vehicles {
                spec.methodology = methodology;
                // Short heterogeneous routes and a small MPC problem
                // keep the debug-build sweep affordable while still
                // draining lanes at different steps (the occupancy
                // tail the lockstep loop has to get right).
                spec.steps = 6 + (spec.id as usize % 5);
                spec.mpc_horizon = 4;
                spec.mpc_iterations = 6;
            }
            let scalar = FleetEngine::new(Schedule::Serial).run(&campaign);
            let batched = FleetEngine::new(Schedule::Serial)
                .with_batch_lanes(lanes)
                .run(&campaign);
            prop_assert_eq!(&batched.summaries, &scalar.summaries);
            prop_assert_eq!(batched.fleet_checksum(), scalar.fleet_checksum());
            prop_assert_eq!(batched.total_steps, scalar.total_steps);
            if lanes >= 2 {
                // Every healthy step ran inside a lockstep sweep …
                prop_assert_eq!(batched.batched_steps, batched.total_steps);
                prop_assert!(batched.batch_sweeps > 0);
                let occupancy = batched.mean_batch_occupancy();
                prop_assert!(occupancy > 0.0 && occupancy <= lanes as f64);
            } else {
                // … and a single lane degrades to the scalar dispatch.
                prop_assert_eq!(batched.batched_steps, 0);
            }
        }
    }
}
