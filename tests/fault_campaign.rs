//! The acceptance demonstration for the robustness PR: a seeded fault
//! campaign on the US06 stress rig where
//!
//! * **unsupervised** OTEM demonstrably produces unusable decisions
//!   (NaN cost / structurally non-finite solver outcome), while
//! * **supervised** OTEM under the *same* faults completes the route
//!   with finite state and bounded battery temperature, narrating the
//!   degradation ladder through telemetry.

use otem_repro::control::mpc::MpcConfig;
use otem_repro::control::policy::Otem;
use otem_repro::control::supervisor::{validate_decision, validate_state};
use otem_repro::control::{Simulator, SupervisedOtem, SupervisorConfig, SystemConfig};
use otem_repro::drivecycle::{standard, PowerTrace, Powertrain, StandardCycle, VehicleParams};
use otem_repro::faults::{FaultKind, FaultPlan, FaultedController};
use otem_repro::solver::SolverOutcome;
use otem_repro::telemetry::{MemorySink, NullSink};
use otem_repro::units::{Seconds, Watts};

const STEPS: usize = 120;

fn rig_trace() -> PowerTrace {
    let cycle = standard(StandardCycle::Us06).expect("synthesis");
    let trace = Powertrain::new(VehicleParams::compact_ev())
        .expect("vehicle")
        .power_trace(&cycle);
    PowerTrace::new(Seconds::new(1.0), trace.window(0, STEPS))
}

fn campaign_mpc() -> MpcConfig {
    MpcConfig {
        horizon: 6,
        solver_iterations: 10,
        ..MpcConfig::default()
    }
}

/// The adversary both runs face: corrupted forecasts mid-route, a stuck
/// pump under load spikes, and a starved solver near the end.
fn campaign_plan() -> FaultPlan {
    FaultPlan::new(0xD06_F00D)
        .inject(FaultKind::ForecastCorrupt, 20, 35)
        .inject(FaultKind::PumpStuck, 50, 75)
        .inject(FaultKind::LoadSpike { power_w: 400_000.0 }, 55, 60)
        .inject(FaultKind::SolverStarvation { max_iterations: 0 }, 90, 100)
        .inject(
            FaultKind::SensorNoise {
                temp_sigma_k: 0.5,
                ratio_sigma: 0.002,
            },
            40,
            50,
        )
}

#[test]
fn unsupervised_mpc_produces_rejectable_decisions_under_corrupted_forecast() {
    let config = SystemConfig::stress_rig();
    let mut otem = Otem::with_mpc(&config, campaign_mpc()).expect("valid");

    // Nominal decision first: the validator accepts it.
    let nominal = otem.plan_with(
        Watts::new(20_000.0),
        &[Watts::new(20_000.0); 6],
        Seconds::new(1.0),
        &NullSink,
    );
    assert!(
        validate_decision(&nominal, config.cap_power_max).is_ok(),
        "nominal decision must pass validation: {nominal:?}"
    );

    // A NaN forecast poisons the rollout objective end to end.
    let corrupt = vec![Watts::new(f64::NAN); 6];
    let decision = otem.plan_with(Watts::new(20_000.0), &corrupt, Seconds::new(1.0), &NullSink);
    assert_eq!(
        decision.outcome,
        SolverOutcome::NonFinite,
        "the solver must surface the poisoned objective structurally: {decision:?}"
    );
    assert!(!decision.cost.is_finite());
    let err = validate_decision(&decision, config.cap_power_max)
        .expect_err("a NaN-cost decision must be rejected");
    assert!(err.to_string().contains("non-finite") || err.to_string().contains("solver"));
}

#[test]
fn supervised_otem_completes_the_fault_campaign_with_bounded_state() {
    let config = SystemConfig::stress_rig();
    let supervisor_config = SupervisorConfig::default();
    let supervised = SupervisedOtem::new(
        Otem::with_mpc(&config, campaign_mpc()).expect("valid"),
        supervisor_config,
    );
    let mut harness = FaultedController::new(supervised, campaign_plan());

    let sink = MemorySink::new();
    let result = Simulator::new(&config).run_with(&mut harness, &rig_trace(), &sink);

    // The route completes with every reported quantity finite and
    // SoC/SoE physical, despite NaN forecasts and a starved solver.
    assert_eq!(result.records.len(), STEPS);
    for (step, rec) in result.records.iter().enumerate() {
        assert!(
            validate_state(&rec.state, &supervisor_config).is_ok(),
            "step {step}: state left the validated envelope: {:?}",
            rec.state
        );
        assert!(rec.hees.delivered.is_finite(), "step {step}");
        assert!(rec.cooling_power.is_finite(), "step {step}");
        assert!(
            rec.state.battery_temp < supervisor_config.temp_hard_max,
            "step {step}: battery temperature ran away"
        );
    }
    assert!(result.capacity_loss().is_finite());

    // The adversary actually fired, and the ladder visibly handled it.
    let supervised = harness.into_inner();
    assert!(sink.count_kind("fault_injected") > 0, "no faults injected");
    assert!(
        supervised.rejected() > 0,
        "the corrupted forecast must produce rejected decisions"
    );
    assert!(
        supervised.fallbacks() > 0,
        "rejections must engage the fallback"
    );
    assert!(
        supervised.rearms() > 0,
        "the MPC must re-arm once the fault windows close"
    );
    assert_eq!(
        sink.count_kind("decision_rejected") as u64,
        supervised.rejected()
    );
    assert_eq!(
        sink.count_kind("fallback_engaged") as u64,
        supervised.fallbacks()
    );
    assert_eq!(sink.count_kind("mpc_rearmed") as u64, supervised.rearms());
    // Healthy again by route end: armed with the MPC driving.
    assert!(
        supervised.is_armed(),
        "the supervisor should have re-armed the MPC after the last fault window"
    );

    // Degraded-time accounting: under this campaign the supervisor's
    // fallback/probe spans must carry nonzero wall time — the quantity
    // `trace_report` attributes to the degradation ladder.
    assert!(
        degraded_span_ns(&sink) > 0,
        "the campaign engaged the fallback, so supervisor spans must have duration"
    );
}

/// Total wall time (ns) recorded under the supervisor's degradation
/// spans (`supervisor_fallback` + `supervisor_probe`).
fn degraded_span_ns(sink: &MemorySink) -> u64 {
    use otem_repro::telemetry::Event;
    sink.events()
        .iter()
        .filter_map(|e| match *e {
            Event::SpanEnd { name, dur_ns, .. }
                if name == "supervisor_fallback" || name == "supervisor_probe" =>
            {
                Some(dur_ns)
            }
            _ => None,
        })
        .sum()
}

/// The converse of the degraded-time assertion above: a fault-free
/// supervised run never enters the fallback or probe paths, so its
/// supervisor span total is exactly zero (while the MPC's own spans
/// are plentiful).
#[test]
fn nominal_supervised_run_accumulates_zero_degraded_time() {
    let config = SystemConfig::stress_rig();
    let mut supervised =
        SupervisedOtem::with_defaults(Otem::with_mpc(&config, campaign_mpc()).expect("valid"));
    let trace = PowerTrace::new(Seconds::new(1.0), rig_trace().window(0, 30));

    let sink = MemorySink::new();
    let result = Simulator::new(&config).run_with(&mut supervised, &trace, &sink);
    assert_eq!(result.records.len(), 30);
    assert!(supervised.is_armed(), "nominal run must stay armed");
    assert_eq!(supervised.fallbacks(), 0);

    assert_eq!(
        degraded_span_ns(&sink),
        0,
        "no degradation, no degraded time"
    );
    assert!(
        sink.count_kind("span_start") > 0,
        "the armed path is still span-instrumented"
    );
    assert_eq!(
        sink.count_kind("span_start"),
        sink.count_kind("span_end"),
        "nominal span stream must be balanced"
    );
}

/// Determinism of the whole campaign: same seed, same plan, same trace
/// → bit-identical trajectories (this is what makes fault campaigns
/// regression-testable).
#[test]
fn fault_campaign_is_deterministic() {
    let config = SystemConfig::stress_rig();
    let trace = rig_trace();
    let mut runs = Vec::new();
    for _ in 0..2 {
        let supervised =
            SupervisedOtem::with_defaults(Otem::with_mpc(&config, campaign_mpc()).expect("valid"));
        let mut harness = FaultedController::new(supervised, campaign_plan());
        runs.push(Simulator::new(&config).run(&mut harness, &trace));
    }
    let (a, b) = (&runs[0], &runs[1]);
    assert_eq!(a.records.len(), b.records.len());
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(
            ra.state.battery_temp.value().to_bits(),
            rb.state.battery_temp.value().to_bits()
        );
        assert_eq!(
            ra.state.soc.value().to_bits(),
            rb.state.soc.value().to_bits()
        );
        assert_eq!(
            ra.hees.delivered.value().to_bits(),
            rb.hees.delivered.value().to_bits()
        );
    }
}
