//! # OTEM — Optimized Thermal and Energy Management for EV Storage
//!
//! Workspace facade for the reproduction of *"OTEM: Optimized Thermal
//! and Energy Management for Hybrid Electrical Energy Storage in
//! Electric Vehicles"* (Vatanparvar & Al Faruque, DATE 2016).
//!
//! Each subsystem lives in its own crate; this facade re-exports them
//! under one roof for applications that want a single dependency:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`units`] | `otem-units` | physical-quantity newtypes |
//! | [`battery`] | `otem-battery` | Li-ion cell/pack models (Eq. 1–5) |
//! | [`ultracap`] | `otem-ultracap` | ultracapacitor bank (Eq. 6–9) |
//! | [`converter`] | `otem-converter` | DC/DC efficiency model |
//! | [`thermal`] | `otem-thermal` | cooling plant (Eq. 14–17) |
//! | [`hees`] | `otem-hees` | storage architectures (Eq. 10–13) |
//! | [`drivecycle`] | `otem-drivecycle` | cycles + power-train model |
//! | [`solver`] | `otem-solver` | NLP toolkit for the MPC |
//! | [`telemetry`] | `otem-telemetry` | structured events, metrics, sinks |
//! | [`control`] | `otem` | OTEM MPC, baselines, simulator, supervisor |
//! | [`faults`] | `otem-faults` | deterministic fault-injection harness |
//! | [`fleet`] | `otem-fleet` | batched fleet engine + JSONL-over-TCP server |
//!
//! # Examples
//!
//! ```
//! use otem_repro::control::{policy::Dual, Simulator, SystemConfig};
//! use otem_repro::drivecycle::{standard, Powertrain, StandardCycle, VehicleParams};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = SystemConfig::default();
//! let cycle = standard(StandardCycle::Nycc)?;
//! let trace = Powertrain::new(VehicleParams::midsize_ev())?.power_trace(&cycle);
//! let mut dual = Dual::new(&config)?;
//! let result = Simulator::new(&config).run(&mut dual, &trace);
//! assert!(result.energy().value() > 0.0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub use otem as control;
pub use otem_battery as battery;
pub use otem_converter as converter;
pub use otem_drivecycle as drivecycle;
pub use otem_faults as faults;
pub use otem_fleet as fleet;
pub use otem_hees as hees;
pub use otem_solver as solver;
pub use otem_telemetry as telemetry;
pub use otem_thermal as thermal;
pub use otem_ultracap as ultracap;
pub use otem_units as units;
